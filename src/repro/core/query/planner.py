"""Cost-based query planner over the index layer.

The eager :class:`~repro.core.query.algebra.Relation` algebra evaluates
strictly left-to-right and fully materializes every intermediate table.
This module keeps that algebra as the *reference implementation* and adds
a planned evaluation path with three layers:

1. **Logical plans** — a small tree of immutable nodes
   (:class:`ExtentScan`, :class:`RelScan`, :class:`Select`,
   :class:`Project`, :class:`Rename`, :class:`Join`, :class:`Union`,
   :class:`Difference`, :class:`Values`) built through :func:`plan`,
   whose builder mirrors the ``Relation`` API method for method.

2. **A cost-based optimizer** that reads cardinality statistics from the
   PR-1 :class:`~repro.core.indexes.IndexLayer` (extent sizes,
   association counters, name-prefix counts, and — since PR 5 — the
   maintained value and participation histograms) to

   * push selections below joins, unions, differences, renames,
     projections, and value dereferences;
   * rewrite recognizable predicates into indexed scans — a
     :class:`~repro.core.query.predicates.NamePrefix` selection over an
     extent of independent classes becomes a bisected
     ``objects_by_name_prefix`` range scan, and an
     :class:`~repro.core.query.predicates.InClass` selection narrows the
     scanned extent (``extent_oids``);
   * apply **semi-join reduction to value dereferences** —
     ``Join(Values(A), B)`` hoists the Values above the join when the
     dereferenced column is not a join column and the join's estimated
     output does not exceed the dereference input (fan-out joins stay
     put), so the probe side is reduced by the join keys *before* role
     paths materialize values (only surviving rows pay the
     dereference);
   * reorder join trees greedily — smallest estimated input first,
     always preferring join partners that share a column (no accidental
     cartesian products) — restoring the original column order with an
     internal :class:`Reorder` node.

   **Statistics model (PR 5).** Selection selectivities are no longer a
   fixed 1/3: structured predicates are costed from maintained
   statistics — ``NamePrefix`` from the bisected name-index count,
   ``InClass`` from extent sizes, ``HasValue`` / ``ValueEquals`` from
   the per-class **top-K + remainder value histogram** (exact counts
   for the K most frequent values, remainder average for the tail),
   ``ParticipatesIn`` from the distinct-participant counters, and
   ``And``/``Or``/``Not`` compose by the independence rules. Join
   output sizes use the containment-of-value-sets estimate
   ``|L|·|R| / ∏ max(V(L,c), V(R,c))`` over per-column distinct counts
   (extent rows are distinct; role columns read the participation
   histogram). Opaque callables keep the 1/3 heuristic.

3. **A streaming executor** that yields rows through generators.
   Selections, projections, renames, value dereferences, and the probe
   side of every join stream; only pipeline breakers materialize (the
   build side of a join — chosen as the smaller estimated input — the
   subtrahend of a difference, and the duplicate-elimination sets of
   union/projection). A join whose driving side is far smaller than a
   bare association scan skips the scan entirely: it fetches each
   driving object's incident relationships from the incidence index
   (index nested-loop join), turning the join cost from O(association)
   into O(matching edges).

Equivalence contract: for any query built both ways, the planner's
:meth:`Plan.execute` returns a relation whose row *multiset* equals the
eager evaluation (verified for randomized schemas/populations/queries in
``tests/test_planner_equivalence.py``). :meth:`Plan.explain` renders a
deterministic plan tree with cardinality estimates for golden-snapshot
testing.

4. **A plan cache** (:class:`PlanCache`, one per database) so
   persistent/repeated queries skip re-optimization: optimizer output
   is memoized under a structural key of the logical tree plus the
   schema epoch (:attr:`~repro.core.versions.manager.VersionManager.
   current_schema_index`), so schema migration invalidates every cached
   plan (``migrate_schema`` additionally clears the cache outright).
   Structured predicates (:mod:`repro.core.query.predicates`) key by
   value; opaque callables key by identity — re-running the *same*
   plan object hits, a structurally identical rebuild with fresh
   lambdas misses.

   **Drift-invalidation contract (PR 5).** Cached plans embed the join
   order chosen from the statistics at caching time; each entry also
   records the statistics snapshot it was optimized under — one count
   per scanned extent / association, plus the selectivity inputs of
   every structured selection predicate (prefix counts, defined-value
   counts, value frequencies, distinct participants), so pure name
   churn or mass re-valuation drifts too, not only row-count growth.
   A lookup
   re-reads those counts and serves the cached plan only while none
   has drifted past the threshold — drift meaning an absolute change
   above ``drift_min_delta`` rows **and** a ratio above
   ``drift_ratio`` (with +1 smoothing so a near-empty snapshot still
   compares). On drift the entry is re-optimized in place (counted in
   :attr:`PlanCache.reoptimizations`). Consequently ``bulk()`` /
   ``bulk_load()`` finalize, compaction GC, and large multi-user
   check-ins invalidate exactly the stale plans — no explicit
   invalidation calls, no wholesale clears — while a plan cached
   against a near-empty database can no longer stay pinned after the
   database inflates. Soundness never depends on this: a stale plan
   returns correct rows, just slower.

5. **Parallel execution over partitioned scans (PR 8).** With a
   :class:`~repro.core.query.parallel.ParallelConfig`, the optimizer
   runs a final pass that wraps *shardable* subtrees — a chain of
   selections over a bare extent scan or association scan — in a
   :class:`Parallel` node. The decision is costed in scanned-row
   units from the same maintained statistics: a base scan of ``S``
   rows parallelizes only when

   * ``S >= threshold`` (default 100 000 — small scans never
     parallelize; pool spin-up would dominate), and
   * ``S / shards + dispatch_overhead < S`` — the per-shard cost plus
     a fixed dispatch constant (default 25 000 row-units per run)
     must beat the serial scan.

   ``explain()`` renders the choice deterministically
   (``Parallel shards=4 backend=thread split=range per-shard~S/n+C``).
   Execution partitions the scan's id list through the index layer
   (shard-stable; ``range`` split preserves serial row order, ``hash``
   is multiset-equal), runs a fused per-shard kernel on a thread or
   fork-process pool, and merges in shard order — a pipeline breaker,
   so everything above (``Project``/``Union``/``Difference``, join
   probe/build) streams unchanged. Worker failures are bounded by
   failpoints and a result timeout, falling back to serial execution
   (see :mod:`repro.core.query.parallel`). Cached plans key on the
   config, so the same logical tree can hold serial and parallel
   optimizations side by side.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.core.database import SeedDatabase
from repro.core.errors import QueryError
from repro.core.indexes import value_key
from repro.core.objects import SeedObject
from repro.core.query.algebra import Relation, dereference, relationship_row
from repro.core.query.parallel import ParallelConfig, ShardSpec, run_sharded
from repro.core.query.predicates import (
    And,
    HasValue,
    InClass,
    NamePrefix,
    Not,
    Or,
    ParticipatesIn,
    ValueEquals,
    describe_predicate,
    narrowed_class,
)

__all__ = [
    "plan",
    "on",
    "Plan",
    "PlanBuilder",
    "PlanCache",
    "plan_cache",
    "execute_node",
    "ColumnPredicate",
    "ExtentScan",
    "RelScan",
    "Select",
    "Project",
    "Rename",
    "Join",
    "Union",
    "Difference",
    "Values",
    "Reorder",
    "Parallel",
    "ParallelConfig",
]


# ----------------------------------------------------------------------
# predicates over rows
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnPredicate:
    """A row predicate that tests a single column with an object predicate.

    Works directly as a ``Relation.select`` predicate (it is a callable
    over row dicts), while giving the optimizer the structure it needs:
    the referenced column (for pushdown) and the cell-level predicate
    (for indexed-scan rewrites).
    """

    column: str
    predicate: Callable[[Any], bool]

    def __call__(self, row: dict[str, Any]) -> bool:
        return bool(self.predicate(row[self.column]))

    def describe(self) -> str:
        return f"{self.column}: {describe_predicate(self.predicate)}"


def on(column: str, predicate: Callable[[Any], bool]) -> ColumnPredicate:
    """Bind an object/value predicate to one column of a relation."""
    return ColumnPredicate(column, predicate)


# ----------------------------------------------------------------------
# logical plan nodes
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class PlanNode:
    """Base of all logical plan nodes (immutable, identity-hashed)."""


@dataclass(frozen=True, eq=False)
class ExtentScan(PlanNode):
    """Scan the live extent of a class into a one-column relation.

    With ``prefix`` set (by the optimizer) the scan bisects the sorted
    name index instead of walking the extent — sound only when every
    class of the scanned family is independent, which the rewrite checks.
    """

    class_name: str
    column: str
    include_specials: bool = True
    prefix: Optional[str] = None


@dataclass(frozen=True, eq=False)
class RelScan(PlanNode):
    """Scan an association's instances into a two-column relation."""

    association: str
    include_specials: bool = True
    with_attributes: tuple[str, ...] = ()


@dataclass(frozen=True, eq=False)
class Select(PlanNode):
    """Keep rows satisfying a predicate (row dict or :func:`on`)."""

    child: PlanNode
    predicate: Callable[[dict[str, Any]], bool]


@dataclass(frozen=True, eq=False)
class Project(PlanNode):
    """Keep only the named columns, removing duplicate rows."""

    child: PlanNode
    columns: tuple[str, ...]


@dataclass(frozen=True, eq=False)
class Rename(PlanNode):
    """Rename columns; ``renames`` is a sorted (old, new) tuple."""

    child: PlanNode
    renames: tuple[tuple[str, str], ...]


@dataclass(frozen=True, eq=False)
class Join(PlanNode):
    """Natural join on all shared columns (cartesian when none)."""

    left: PlanNode
    right: PlanNode


@dataclass(frozen=True, eq=False)
class Union(PlanNode):
    """Set union of two same-column relations."""

    left: PlanNode
    right: PlanNode


@dataclass(frozen=True, eq=False)
class Difference(PlanNode):
    """Set difference of two same-column relations."""

    left: PlanNode
    right: PlanNode


@dataclass(frozen=True, eq=False)
class Values(PlanNode):
    """Dereference a role path of an object column into a value column."""

    child: PlanNode
    column: str
    role_path: str
    into: str


@dataclass(frozen=True, eq=False)
class Reorder(PlanNode):
    """Permute columns (optimizer-internal; restores the original layout
    after join reordering without the duplicate-removal of a Project)."""

    child: PlanNode
    columns: tuple[str, ...]


@dataclass(frozen=True, eq=False)
class Parallel(PlanNode):
    """Run a shardable subtree across a worker pool (optimizer-placed).

    ``backend`` is already resolved (``thread`` or ``process``) so the
    node executes — and ``explain()`` renders — deterministically. The
    carried config supplies the runtime failure policy (fallback,
    timeout).
    """

    child: PlanNode
    shards: int
    backend: str
    split: str
    config: ParallelConfig


# ----------------------------------------------------------------------
# schema helpers
# ----------------------------------------------------------------------


def _columns_of(db: SeedDatabase, node: PlanNode) -> tuple[str, ...]:
    """Output columns of *node*, computed statically."""
    if isinstance(node, ExtentScan):
        return (node.column,)
    if isinstance(node, RelScan):
        assoc = db.schema.association(node.association)
        return assoc.role_names() + node.with_attributes
    if isinstance(node, Select):
        return _columns_of(db, node.child)
    if isinstance(node, (Project, Reorder)):
        return node.columns
    if isinstance(node, Rename):
        mapping = dict(node.renames)
        return tuple(
            mapping.get(column, column) for column in _columns_of(db, node.child)
        )
    if isinstance(node, Join):
        left = _columns_of(db, node.left)
        right = _columns_of(db, node.right)
        return left + tuple(column for column in right if column not in left)
    if isinstance(node, (Union, Difference)):
        return _columns_of(db, node.left)
    if isinstance(node, Values):
        return _columns_of(db, node.child) + (node.into,)
    if isinstance(node, Parallel):
        return _columns_of(db, node.child)
    raise AssertionError(f"unhandled node {type(node).__name__}")  # pragma: no cover


def _family_is_independent(db: SeedDatabase, scan: ExtentScan) -> bool:
    """True when every class the scan can yield is a top-level class.

    Only then does every scanned instance appear in the sorted name
    index, making the prefix range scan equivalent to the predicate.
    """
    wanted = db.schema.entity_class(scan.class_name)
    if not wanted.is_independent:
        return False
    if scan.include_specials:
        return all(special.is_independent for special in wanted.all_specials())
    return True


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------

#: fallback selectivity for predicates the statistics cannot explain
#: (opaque callables) — the planner's pre-statistics heuristic
DEFAULT_SELECTIVITY = 1 / 3


def _column_class(db: SeedDatabase, node: PlanNode, column: str) -> Optional[str]:
    """Class name of the objects a column carries, traced to its scan.

    ``None`` when the column cannot be traced (value columns, attribute
    columns, the ``into`` output of a Values node).
    """
    if isinstance(node, ExtentScan):
        return node.class_name if column == node.column else None
    if isinstance(node, RelScan):
        assoc = db.schema.association(node.association)
        roles = assoc.role_names()
        if column in roles:
            return assoc.role_at(roles.index(column)).target.full_name
        return None
    if isinstance(node, (Select, Project, Reorder)):
        return _column_class(db, node.child, column)
    if isinstance(node, Rename):
        inverse = {new: old for old, new in node.renames}
        return _column_class(db, node.child, inverse.get(column, column))
    if isinstance(node, Join):
        if column in _columns_of(db, node.left):
            return _column_class(db, node.left, column)
        return _column_class(db, node.right, column)
    if isinstance(node, (Union, Difference)):
        return _column_class(db, node.left, column)
    if isinstance(node, Values):
        if column == node.into:
            return None
        return _column_class(db, node.child, column)
    if isinstance(node, Parallel):
        return _column_class(db, node.child, column)
    return None  # pragma: no cover - exhaustive


def _predicate_selectivity(
    db: SeedDatabase, predicate: Any, class_name: Optional[str]
) -> float:
    """Fraction of rows a cell predicate keeps, from the statistics.

    *class_name* is the traced class of the tested column (None when
    untraceable); histogram lookups then fall back to database-wide
    aggregates. Opaque predicates keep the old 1/3 heuristic.
    """
    indexes = db.indexes
    if isinstance(predicate, And):
        selectivity = 1.0
        for part in predicate.parts:
            selectivity *= _predicate_selectivity(db, part, class_name)
        return selectivity
    if isinstance(predicate, Or):
        miss = 1.0
        for part in predicate.parts:
            miss *= 1.0 - _predicate_selectivity(db, part, class_name)
        return 1.0 - miss
    if isinstance(predicate, Not):
        return max(
            0.0, 1.0 - _predicate_selectivity(db, predicate.part, class_name)
        )
    if isinstance(predicate, NamePrefix):
        total = len(indexes.names)
        if not total:
            return DEFAULT_SELECTIVITY
        return indexes.name_prefix_count(predicate.prefix) / total
    if isinstance(predicate, InClass):
        total = indexes.total_objects()
        if not total:
            return DEFAULT_SELECTIVITY
        wanted = db.schema.entity_class(predicate.class_name)
        return indexes.extent_size(wanted, predicate.include_specials) / total
    if isinstance(predicate, (HasValue, ValueEquals)):
        wanted = (
            db.schema.entity_class(class_name) if class_name is not None else None
        )
        if wanted is not None:
            total = indexes.extent_size(wanted)
            defined = indexes.defined_count(wanted)
        else:  # aggregate over every class
            total = indexes.total_objects()
            defined = sum(
                sum(bucket.values()) for bucket in indexes.value_counts.values()
            )
        if not total:
            return DEFAULT_SELECTIVITY
        if isinstance(predicate, HasValue):
            return defined / total
        try:
            if wanted is not None:
                matching = indexes.value_frequency(wanted, predicate.expected)
            else:
                key = value_key(predicate.expected)
                matching = float(
                    sum(
                        bucket.get(key, 0)
                        for bucket in indexes.value_counts.values()
                    )
                )
        except TypeError:
            # unhashable expected value (e.g. a list): the predicate is
            # still a valid filter — it just cannot be histogram-costed
            return DEFAULT_SELECTIVITY
        return min(1.0, matching / total)
    if isinstance(predicate, ParticipatesIn):
        try:
            assoc = db.schema.association(predicate.association)
        except Exception:  # pragma: no cover - defensive
            return DEFAULT_SELECTIVITY
        position: Optional[int] = None
        if predicate.role is not None and predicate.role in assoc.role_names():
            position = assoc.role_names().index(predicate.role)
        participants = indexes.distinct_participants(assoc.name, position)
        if class_name is not None:
            total = indexes.extent_size(db.schema.entity_class(class_name))
        else:
            total = indexes.total_objects()
        if not total:
            return DEFAULT_SELECTIVITY
        return min(1.0, participants / total)
    return DEFAULT_SELECTIVITY


def _selectivity_of(
    db: SeedDatabase, child: PlanNode, predicate: Callable[..., Any]
) -> float:
    """Selectivity of a Select's predicate over *child*'s rows."""
    if isinstance(predicate, ColumnPredicate):
        class_name = _column_class(db, child, predicate.column)
        return _predicate_selectivity(db, predicate.predicate, class_name)
    return DEFAULT_SELECTIVITY


def _estimate(db: SeedDatabase, node: PlanNode, memo: dict[int, int]) -> int:
    """Estimated output rows of *node*, from index-layer statistics."""
    cached = memo.get(id(node))
    if cached is not None:
        return cached
    estimate = _estimate_uncached(db, node, memo)
    memo[id(node)] = estimate
    return estimate


def _estimate_uncached(db: SeedDatabase, node: PlanNode, memo: dict[int, int]) -> int:
    indexes = db.indexes
    if isinstance(node, ExtentScan):
        wanted = db.schema.entity_class(node.class_name)
        size = indexes.extent_size(wanted, node.include_specials)
        if node.prefix is not None:
            size = min(size, indexes.name_prefix_count(node.prefix))
        return size
    if isinstance(node, RelScan):
        return indexes.association_size(node.association)
    if isinstance(node, Select):
        child = _estimate(db, node.child, memo)
        selectivity = _selectivity_of(db, node.child, node.predicate)
        return max(1, round(child * selectivity))
    if isinstance(node, (Project, Rename, Reorder, Values)):
        return _estimate(db, node.child, memo)
    if isinstance(node, Join):
        left = _estimate(db, node.left, memo)
        right = _estimate(db, node.right, memo)
        left_columns = _columns_of(db, node.left)
        right_columns = _columns_of(db, node.right)
        shared = [column for column in right_columns if column in left_columns]
        if shared:
            # |L ⋈ R| ≈ |L|·|R| / ∏ max(V(L,c), V(R,c)) — the classical
            # containment-of-value-sets estimate over the maintained
            # distinct counts; never below the old max(L, R) // denom
            denominator = 1
            for column in shared:
                denominator *= max(
                    _distinct_of(db, node.left, column, memo),
                    _distinct_of(db, node.right, column, memo),
                    1,
                )
            return max(1, (left * right) // denominator) if left and right else 0
        return left * right
    if isinstance(node, Union):
        return _estimate(db, node.left, memo) + _estimate(db, node.right, memo)
    if isinstance(node, Difference):
        return _estimate(db, node.left, memo)
    if isinstance(node, Parallel):
        return _estimate(db, node.child, memo)
    raise AssertionError(f"unhandled node {type(node).__name__}")  # pragma: no cover


def _distinct_of(
    db: SeedDatabase, node: PlanNode, column: str, memo: dict[int, int]
) -> int:
    """Estimated distinct values a column holds in *node*'s output.

    Scans answer exactly (extent rows are distinct objects; role
    columns read the maintained distinct-participant counters);
    everything else delegates toward its scans, capped by the node's
    own row estimate.
    """
    if isinstance(node, ExtentScan):
        return _estimate(db, node, memo)
    if isinstance(node, RelScan):
        assoc = db.schema.association(node.association)
        roles = assoc.role_names()
        if column in roles:
            return db.indexes.distinct_participants(
                assoc.name, roles.index(column)
            )
        return _estimate(db, node, memo)
    if isinstance(node, Select):
        return min(
            _distinct_of(db, node.child, column, memo),
            _estimate(db, node, memo),
        )
    if isinstance(node, (Project, Reorder)):
        return _distinct_of(db, node.child, column, memo)
    if isinstance(node, Rename):
        inverse = {new: old for old, new in node.renames}
        return _distinct_of(db, node.child, inverse.get(column, column), memo)
    if isinstance(node, Join):
        if column in _columns_of(db, node.left):
            owner: PlanNode = node.left
        else:
            owner = node.right
        return min(
            _distinct_of(db, owner, column, memo), _estimate(db, node, memo)
        )
    if isinstance(node, Union):
        return _distinct_of(db, node.left, column, memo) + _distinct_of(
            db, node.right, column, memo
        )
    if isinstance(node, Difference):
        return _distinct_of(db, node.left, column, memo)
    if isinstance(node, Values):
        if column == node.into:
            return _estimate(db, node, memo)
        return _distinct_of(db, node.child, column, memo)
    if isinstance(node, Parallel):
        return _distinct_of(db, node.child, column, memo)
    return _estimate(db, node, memo)  # pragma: no cover - exhaustive


# ----------------------------------------------------------------------
# optimizer
# ----------------------------------------------------------------------


def optimize(
    db: SeedDatabase, node: PlanNode, parallel: Optional[ParallelConfig] = None
) -> PlanNode:
    """Full rewrite pipeline: pushdown, indexed scans, semi-join
    reduction for value dereferences, join order, and — when a
    :class:`ParallelConfig` is given — parallelization of shardable
    scans that cost out (see module docstring, layer 5)."""
    node = _push_selections(db, node)
    node = _rewrite_scans(db, node)
    node = _reduce_values_joins(db, node)
    node = _reorder_joins(db, node)
    if parallel is not None:
        node = _parallelize(db, node, parallel)
    return node


def _push_selections(db: SeedDatabase, node: PlanNode) -> PlanNode:
    """Sink every Select as deep as soundness allows."""
    if isinstance(node, Select):
        child = _push_selections(db, node.child)
        return _sink(db, node.predicate, child)
    if isinstance(node, (Project, Rename, Values, Reorder)):
        return replace(node, child=_push_selections(db, node.child))
    if isinstance(node, (Join, Union, Difference)):
        return replace(
            node,
            left=_push_selections(db, node.left),
            right=_push_selections(db, node.right),
        )
    return node


def _sink(
    db: SeedDatabase, predicate: Callable[[dict[str, Any]], bool], node: PlanNode
) -> PlanNode:
    """Place *predicate* as low in *node*'s tree as it stays sound."""
    column = predicate.column if isinstance(predicate, ColumnPredicate) else None

    if isinstance(node, Select):
        # slide below sibling selections so scans end up directly under
        # their filters (predicates are pure; order cannot matter)
        return Select(_sink(db, predicate, node.child), node.predicate)
    if isinstance(node, (Union, Difference)):
        # σ(A ∪ B) = σA ∪ σB and σ(A − B) = σA − σB (key-equal rows give
        # equal predicate results, so filtering the subtrahend is sound)
        return replace(
            node,
            left=_sink(db, predicate, node.left),
            right=_sink(db, predicate, node.right),
        )
    if column is None:
        # opaque row predicate: only union/difference pushes are sound
        return Select(node, predicate)
    if isinstance(node, Rename):
        inverse = {new: old for old, new in node.renames}
        renamed = ColumnPredicate(inverse.get(column, column), predicate.predicate)
        return replace(node, child=_sink(db, renamed, node.child))
    if isinstance(node, Reorder):
        return replace(node, child=_sink(db, predicate, node.child))
    if isinstance(node, Project):
        if column in node.columns:
            return replace(node, child=_sink(db, predicate, node.child))
        return Select(node, predicate)
    if isinstance(node, Values):
        if column != node.into:
            return replace(node, child=_sink(db, predicate, node.child))
        return Select(node, predicate)
    if isinstance(node, Join):
        left_columns = _columns_of(db, node.left)
        right_columns = _columns_of(db, node.right)
        left, right = node.left, node.right
        pushed = False
        if column in left_columns:
            left = _sink(db, predicate, left)
            pushed = True
        if column in right_columns:
            right = _sink(db, predicate, right)
            pushed = True
        if pushed:
            return Join(left, right)
        return Select(node, predicate)  # pragma: no cover - unknown column
    return Select(node, predicate)


def _rewrite_scans(db: SeedDatabase, node: PlanNode) -> PlanNode:
    """Turn recognizable selections over extent scans into indexed scans."""
    if isinstance(node, Select):
        child = _rewrite_scans(db, node.child)
        if isinstance(child, ExtentScan) and isinstance(
            node.predicate, ColumnPredicate
        ):
            if node.predicate.column == child.column:
                return _absorb_into_scan(db, child, node.predicate)
        return Select(child, node.predicate)
    if isinstance(node, (Project, Rename, Values, Reorder)):
        return replace(node, child=_rewrite_scans(db, node.child))
    if isinstance(node, (Join, Union, Difference)):
        return replace(
            node,
            left=_rewrite_scans(db, node.left),
            right=_rewrite_scans(db, node.right),
        )
    return node


def _absorb_into_scan(
    db: SeedDatabase, scan: ExtentScan, predicate: ColumnPredicate
) -> PlanNode:
    """Fold the indexable parts of *predicate* into *scan*."""
    parts = (
        list(predicate.predicate.parts)
        if isinstance(predicate.predicate, And)
        else [predicate.predicate]
    )
    residual: list[Callable[[Any], bool]] = []
    for part in parts:
        if isinstance(part, NamePrefix) and _family_is_independent(db, scan):
            if scan.prefix is None or part.prefix.startswith(scan.prefix):
                scan = replace(scan, prefix=part.prefix)
            elif not scan.prefix.startswith(part.prefix):
                # incompatible prefixes: provably empty, but keep the
                # filter (no dedicated empty node) — it matches nothing
                residual.append(part)
        elif (
            isinstance(part, InClass)
            and part.include_specials
            and scan.include_specials
        ):
            target = narrowed_class(db, scan.class_name, part)
            if target is None:
                residual.append(part)
            else:  # narrowed, or implied (target == scanned class)
                scan = replace(scan, class_name=target)
        else:
            residual.append(part)
    if not residual:
        return scan
    remaining = residual[0] if len(residual) == 1 else And(tuple(residual))
    return Select(scan, ColumnPredicate(predicate.column, remaining))


def _reduce_values_joins(db: SeedDatabase, node: PlanNode) -> PlanNode:
    """Semi-join reduction for ``values()`` role paths.

    ``Join(Values(A), B)`` dereferences the role path for *every* row
    of A, including rows the join then discards. Hoisting the Values
    above the join — sound whenever the dereferenced ``into`` column is
    not a join column, since the added column is computed row-locally
    from a column the join preserves — means the probe side is reduced
    by the join keys first and only surviving rows materialize values:

        Join(Values(A), B)  →  Reorder(Values(Join(A, B)))

    The Reorder restores the original column layout (Values appends its
    column last). Applied bottom-up so stacked Values and Values on
    both sides all hoist; the join reorderer then sees the bare join
    chain and can reorder through it.
    """
    if isinstance(node, (Select, Project, Rename, Values, Reorder)):
        return replace(node, child=_reduce_values_joins(db, node.child))
    if isinstance(node, (Union, Difference)):
        return replace(
            node,
            left=_reduce_values_joins(db, node.left),
            right=_reduce_values_joins(db, node.right),
        )
    if not isinstance(node, Join):
        return node
    rebuilt = Join(
        _reduce_values_joins(db, node.left),
        _reduce_values_joins(db, node.right),
    )
    hoisted = _hoist_values(db, rebuilt)
    if hoisted is rebuilt:
        return rebuilt
    original = _columns_of(db, rebuilt)
    if _columns_of(db, hoisted) != original:
        hoisted = Reorder(hoisted, original)
    return hoisted


def _strip_reorders(node: PlanNode) -> PlanNode:
    while isinstance(node, Reorder):
        node = node.child
    return node


def _strip_parallel(node: PlanNode) -> PlanNode:
    while isinstance(node, Parallel):
        node = node.child
    return node


def _hoist_values(db: SeedDatabase, node: PlanNode) -> PlanNode:
    """Pull Values nodes out of a join tree (see _reduce_values_joins).

    Reorder wrappers (from inner hoists) are looked through — they only
    permute columns, and the caller restores the final layout anyway.
    A hoist only pays when the join *reduces* (or keeps) the Values
    input: on a fan-out join, dereferencing after the join would run
    the role path once per joined row instead of once per input row,
    so those stay put (estimate-gated).
    """
    if not isinstance(node, Join):
        return node
    left = _strip_reorders(node.left)
    right = _strip_reorders(node.right)

    def reduces(values_node: Values, other: PlanNode) -> bool:
        memo: dict[int, int] = {}
        joined = Join(values_node.child, other)
        return _estimate(db, joined, memo) <= _estimate(
            db, values_node.child, memo
        )

    if (
        isinstance(left, Values)
        and left.into not in _columns_of(db, right)
        and reduces(left, right)
    ):
        inner = _hoist_values(db, Join(left.child, right))
        return Values(inner, left.column, left.role_path, left.into)
    if (
        isinstance(right, Values)
        and right.into not in _columns_of(db, left)
        and reduces(right, left)
    ):
        inner = _hoist_values(db, Join(left, right.child))
        return Values(inner, right.column, right.role_path, right.into)
    return node


def _reorder_joins(db: SeedDatabase, node: PlanNode) -> PlanNode:
    """Greedily reorder maximal join chains, smallest estimate first."""
    if isinstance(node, (Select, Project, Rename, Values, Reorder)):
        return replace(node, child=_reorder_joins(db, node.child))
    if isinstance(node, (Union, Difference)):
        return replace(
            node,
            left=_reorder_joins(db, node.left),
            right=_reorder_joins(db, node.right),
        )
    if not isinstance(node, Join):
        return node

    factors = [_reorder_joins(db, factor) for factor in _flatten_join(node)]
    if len(factors) < 3:
        rebuilt: PlanNode = factors[0]
        for factor in factors[1:]:
            rebuilt = Join(rebuilt, factor)
        return rebuilt

    original_columns = _columns_of(db, node)
    memo: dict[int, int] = {}
    estimates = [_estimate(db, factor, memo) for factor in factors]
    remaining = list(range(len(factors)))
    start = min(remaining, key=lambda i: (estimates[i], i))
    remaining.remove(start)
    tree: PlanNode = factors[start]
    tree_columns = set(_columns_of(db, factors[start]))

    # every candidate Join built for costing must outlive the loop: the
    # estimate memo keys by id(), so a freed transient's address could
    # be reused by a later node, which would then hit the stale entry
    keepalive: list[PlanNode] = []
    while remaining:
        connected = [
            i
            for i in remaining
            if tree_columns & set(_columns_of(db, factors[i]))
        ]
        candidates = connected or remaining  # cartesian only when forced
        # cost each candidate with the same containment-of-value-sets
        # estimate the rest of the optimizer uses — a private
        # max(L, R) shortcut here would under-cost fan-out joins and
        # disagree with the Values-hoist gate about the same join's size
        candidate_joins = {i: Join(tree, factors[i]) for i in candidates}
        keepalive.extend(candidate_joins.values())
        sizes = {
            i: _estimate(db, candidate, memo)
            for i, candidate in candidate_joins.items()
        }
        chosen = min(candidates, key=lambda i: (sizes[i], estimates[i], i))
        remaining.remove(chosen)
        tree = candidate_joins[chosen]
        tree_columns |= set(_columns_of(db, factors[chosen]))

    if _columns_of(db, tree) != original_columns:
        tree = Reorder(tree, original_columns)
    return tree


def _flatten_join(node: PlanNode) -> list[PlanNode]:
    if isinstance(node, Join):
        return _flatten_join(node.left) + _flatten_join(node.right)
    return [node]


# ----------------------------------------------------------------------
# parallelization pass
# ----------------------------------------------------------------------


def _shard_spec(db: SeedDatabase, node: PlanNode) -> Optional[ShardSpec]:
    """Decompose a shardable subtree into a kernel spec, else ``None``.

    Shardable = a (possibly empty) chain of selections over a bare
    extent scan or association scan. Prefix-rewritten extent scans are
    excluded — they already read a bisected slice of the name index,
    which the oid-keyed partitioner cannot split.
    """
    columns = _columns_of(db, node)
    cell_tests: list[tuple[int, Any]] = []
    row_tests: list[Any] = []
    while isinstance(node, Select):
        predicate = node.predicate
        if isinstance(predicate, ColumnPredicate):
            cell_tests.append(
                (columns.index(predicate.column), predicate.predicate)
            )
        else:
            row_tests.append(predicate)
        node = node.child
    cell_tests.reverse()  # bottom-up, matching the serial nesting order
    row_tests.reverse()
    if isinstance(node, ExtentScan) and node.prefix is None:
        return ShardSpec(
            kind="extent",
            name=node.class_name,
            include_specials=node.include_specials,
            with_attributes=(),
            columns=columns,
            cell_tests=tuple(cell_tests),
            row_tests=tuple(row_tests),
        )
    if isinstance(node, RelScan):
        return ShardSpec(
            kind="rel",
            name=node.association,
            include_specials=node.include_specials,
            with_attributes=node.with_attributes,
            columns=columns,
            cell_tests=tuple(cell_tests),
            row_tests=tuple(row_tests),
        )
    return None


def _base_scan_size(db: SeedDatabase, spec: ShardSpec) -> int:
    """Rows the spec's base scan reads — the unit of the parallel cost
    model (parallelism saves scan + predicate work, not output rows)."""
    if spec.kind == "extent":
        wanted = db.schema.entity_class(spec.name)
        return db.indexes.extent_size(wanted, spec.include_specials)
    return db.indexes.association_size(spec.name)


def _parallelize(
    db: SeedDatabase, node: PlanNode, config: ParallelConfig
) -> PlanNode:
    """Wrap shardable subtrees whose scans cost out in Parallel nodes."""
    backend = config.resolved_backend()

    def wrap(current: PlanNode) -> PlanNode:
        spec = _shard_spec(db, current)
        if spec is not None:
            scanned = _base_scan_size(db, spec)
            if (
                scanned >= config.threshold
                and scanned / config.shards + config.dispatch_overhead < scanned
            ):
                return Parallel(
                    current, config.shards, backend, config.split, config
                )
            return current  # the whole chain shares one base: decided
        if isinstance(current, (Select, Project, Rename, Values, Reorder)):
            return replace(current, child=wrap(current.child))
        if isinstance(current, (Join, Union, Difference)):
            return replace(
                current, left=wrap(current.left), right=wrap(current.right)
            )
        return current

    return wrap(node)


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------


def _plan_key(node: PlanNode) -> tuple:
    """Structural, hashable key of a logical tree (cache identity).

    Plan nodes are identity-hashed (``eq=False``), so the key recurses
    over their fields instead. Raises ``TypeError`` for unhashable
    predicate payloads — the cache then bypasses itself for that plan.
    """
    if isinstance(node, ExtentScan):
        return (
            "extent",
            node.class_name,
            node.column,
            node.include_specials,
            node.prefix,
        )
    if isinstance(node, RelScan):
        return (
            "rel",
            node.association,
            node.include_specials,
            node.with_attributes,
        )
    if isinstance(node, Select):
        return ("select", _plan_key(node.child), _predicate_key(node.predicate))
    if isinstance(node, Project):
        return ("project", _plan_key(node.child), node.columns)
    if isinstance(node, Rename):
        return ("rename", _plan_key(node.child), node.renames)
    if isinstance(node, Reorder):
        return ("reorder", _plan_key(node.child), node.columns)
    if isinstance(node, Values):
        return (
            "values",
            _plan_key(node.child),
            node.column,
            node.role_path,
            node.into,
        )
    if isinstance(node, Join):
        return ("join", _plan_key(node.left), _plan_key(node.right))
    if isinstance(node, Union):
        return ("union", _plan_key(node.left), _plan_key(node.right))
    if isinstance(node, Difference):
        return ("difference", _plan_key(node.left), _plan_key(node.right))
    if isinstance(node, Parallel):
        return (
            "parallel",
            _plan_key(node.child),
            node.shards,
            node.backend,
            node.split,
        )
    raise AssertionError(f"unhandled node {type(node).__name__}")  # pragma: no cover


def _predicate_key(predicate: Any) -> Any:
    """Hashable cache key of a predicate.

    Structured predicates are frozen dataclasses and key by value;
    opaque callables key by their (default, identity-based) hash. The
    cache keeps a reference to every keyed predicate via the stored
    plan, so an identity key can never be reused by a new object while
    its entry lives.
    """
    if isinstance(predicate, ColumnPredicate):
        return ("column", predicate.column, _predicate_key(predicate.predicate))
    hash(predicate)  # unhashable → TypeError → caller bypasses the cache
    return predicate


def _collect_predicate_stats(
    db: SeedDatabase,
    child: PlanNode,
    predicate: Any,
    class_name: Optional[str],
    pairs: list[tuple[tuple, float]],
) -> None:
    """Selectivity inputs reachable inside a structured predicate.

    One pair per NamePrefix (matching-name count), HasValue
    (defined-value count of the traced class), ValueEquals (histogram
    frequency of the expected value), and ParticipatesIn
    (distinct-participant count) — the statistics whose drift can turn
    a cached ordering stale without any extent or association size
    moving (mass renames, mass re-valuations, participation churn).
    """
    indexes = db.indexes
    if isinstance(predicate, ColumnPredicate):
        _collect_predicate_stats(
            db,
            child,
            predicate.predicate,
            _column_class(db, child, predicate.column),
            pairs,
        )
    elif isinstance(predicate, NamePrefix):
        pairs.append(
            (
                ("prefix", predicate.prefix),
                indexes.name_prefix_count(predicate.prefix),
            )
        )
    elif isinstance(predicate, (HasValue, ValueEquals)) and class_name:
        wanted = db.schema.entity_class(class_name)
        if isinstance(predicate, HasValue):
            pairs.append(
                (("defined", class_name), indexes.defined_count(wanted))
            )
        else:
            try:
                frequency = indexes.value_frequency(wanted, predicate.expected)
            except TypeError:  # unhashable expected value: not costed
                return
            pairs.append((("valfreq", class_name), frequency))
    elif isinstance(predicate, ParticipatesIn):
        pairs.append(
            (
                ("participants", predicate.association),
                indexes.distinct_participants(predicate.association),
            )
        )
    elif isinstance(predicate, (And, Or)):
        for part in predicate.parts:
            _collect_predicate_stats(db, child, part, class_name, pairs)
    elif isinstance(predicate, Not):
        _collect_predicate_stats(db, child, predicate.part, class_name, pairs)


def _stats_snapshot(db: SeedDatabase, node: PlanNode) -> tuple:
    """The statistics a plan's optimization depended on.

    One ``(key, count)`` pair per scanned extent / association, plus
    the selectivity inputs of every structured selection predicate
    (prefix counts, defined-value counts, value frequencies, distinct
    participants) — the snapshot is taken on the *logical* tree (what
    the cache keys on), where that selectivity still lives in the
    Select predicates. Stored next to each cached plan so a lookup can
    detect drift: the same walk over current statistics yields pairs
    in the same order, making the comparison positional.
    """
    pairs: list[tuple[tuple, float]] = []
    indexes = db.indexes

    def walk(current: PlanNode) -> None:
        if isinstance(current, ExtentScan):
            wanted = db.schema.entity_class(current.class_name)
            pairs.append(
                (
                    ("extent", current.class_name, current.include_specials),
                    indexes.extent_size(wanted, current.include_specials),
                )
            )
            if current.prefix is not None:
                pairs.append(
                    (
                        ("prefix", current.prefix),
                        indexes.name_prefix_count(current.prefix),
                    )
                )
            return
        if isinstance(current, RelScan):
            pairs.append(
                (
                    ("assoc", current.association),
                    indexes.association_size(current.association),
                )
            )
            return
        if isinstance(current, Select):
            _collect_predicate_stats(
                db, current.child, current.predicate, None, pairs
            )
            walk(current.child)
            return
        if isinstance(current, (Project, Rename, Values, Reorder, Parallel)):
            walk(current.child)
            return
        walk(current.left)  # Join / Union / Difference
        walk(current.right)

    walk(node)
    return tuple(pairs)


class PlanCache:
    """LRU memo of optimizer output for one database, drift-aware.

    Keys are ``(structural plan key, schema epoch)``; the epoch is the
    database's current schema version index, so entries cached under a
    pre-migration schema can never be served afterwards (and
    ``migrate_schema`` clears the cache anyway). Correctness does not
    depend on statistics: a cached plan stays *sound* as data changes,
    merely possibly non-optimal.

    **Drift invalidation** closes the staleness hole: each entry
    records the :func:`_stats_snapshot` it was optimized under, and a
    lookup whose *current* leaf cardinalities drifted past the
    threshold (any pair changing by more than ``drift_min_delta`` rows
    *and* more than ``drift_ratio``×, with +1 smoothing so near-empty
    snapshots still compare) re-optimizes in place instead of serving
    the pinned plan. Bulk-load finalize, compaction GC, and large
    check-ins thereby invalidate exactly the plans whose inputs they
    changed — no wholesale clears, small oscillations never thrash.
    """

    def __init__(
        self,
        capacity: int = 256,
        drift_ratio: float = 2.0,
        drift_min_delta: int = 16,
    ) -> None:
        self.capacity = capacity
        self.drift_ratio = drift_ratio
        self.drift_min_delta = drift_min_delta
        self._entries: "OrderedDict[tuple, tuple[PlanNode, tuple]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.reoptimizations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached plan (schema migration)."""
        self._entries.clear()

    def _drifted(self, before: tuple, current: tuple) -> bool:
        for (__, old), (__, new) in zip(before, current):
            if abs(new - old) <= self.drift_min_delta:
                continue
            low, high = sorted((old, new))
            if (high + 1) / (low + 1) > self.drift_ratio:
                return True
        return False

    def optimized(
        self,
        db: SeedDatabase,
        node: PlanNode,
        parallel: Optional[ParallelConfig] = None,
    ) -> PlanNode:
        """The optimized tree for *node*, cached while statistics hold.

        The parallel config participates in the key — the same logical
        tree optimized serially and under a config are distinct entries
        (a ``ParallelConfig`` is a frozen, hashable dataclass).
        """
        try:
            key = (_plan_key(node), db.versions.current_schema_index, parallel)
        except TypeError:
            self.bypasses += 1
            return optimize(db, node, parallel)
        entry = self._entries.get(key)
        current: Optional[tuple] = None
        if entry is not None:
            cached, snapshot = entry
            current = _stats_snapshot(db, node)
            if not self._drifted(snapshot, current):
                self.hits += 1
                self._entries.move_to_end(key)
                return cached
            self.reoptimizations += 1
        else:
            self.misses += 1
        result = optimize(db, node, parallel)
        if current is None:
            current = _stats_snapshot(db, node)
        self._entries[key] = (result, current)
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return result


def plan_cache(db: SeedDatabase) -> PlanCache:
    """The database's plan cache, created on first use.

    Lives as an attribute on the database (the database module cannot
    import the planner — it would cycle) and is cleared by
    ``migrate_schema``.
    """
    cache = getattr(db, "_plan_cache", None)
    if cache is None:
        cache = PlanCache()
        db._plan_cache = cache  # noqa: SLF001
    return cache


# ----------------------------------------------------------------------
# streaming executor
# ----------------------------------------------------------------------

_cell_key = Relation._cell_key  # identical comparison semantics


class _Executor:
    """Generator-based evaluation of an (optimized) plan tree."""

    def __init__(self, db: SeedDatabase) -> None:
        self._db = db

    def rows(self, node: PlanNode) -> Iterator[tuple]:
        if isinstance(node, ExtentScan):
            yield from self._scan_extent(node)
        elif isinstance(node, RelScan):
            yield from self._scan_relationships(node)
        elif isinstance(node, Select):
            yield from self._select(node)
        elif isinstance(node, Project):
            yield from self._project(node)
        elif isinstance(node, Rename):
            yield from self.rows(node.child)
        elif isinstance(node, Reorder):
            yield from self._reorder(node)
        elif isinstance(node, Join):
            yield from self._join(node)
        elif isinstance(node, Union):
            yield from self._union(node)
        elif isinstance(node, Difference):
            yield from self._difference(node)
        elif isinstance(node, Values):
            yield from self._values(node)
        elif isinstance(node, Parallel):
            yield from self._parallel(node)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled node {type(node).__name__}")

    # -- scans ---------------------------------------------------------

    def _scan_extent(self, node: ExtentScan) -> Iterator[tuple]:
        if node.prefix is None:
            for obj in self._db.iter_objects(
                node.class_name, include_specials=node.include_specials
            ):
                yield (obj,)
            return
        wanted = self._db.schema.entity_class(node.class_name)
        for obj in self._db.objects_by_name_prefix(node.prefix):
            if node.include_specials:
                if not obj.entity_class.is_kind_of(wanted):
                    continue
            elif obj.entity_class is not wanted:
                continue
            yield (obj,)

    def _scan_relationships(self, node: RelScan) -> Iterator[tuple]:
        for rel in self._db.iter_relationships(
            node.association, include_specials=node.include_specials
        ):
            yield relationship_row(rel, node.with_attributes)

    def _parallel(self, node: Parallel) -> Iterator[tuple]:
        """Dispatch a Parallel node to the sharded worker runtime.

        A pipeline breaker: the shards materialize before the first row
        is yielded, so worker pools wind down deterministically instead
        of living as long as a half-consumed generator.
        """
        spec = _shard_spec(self._db, node.child)
        if spec is None:  # pragma: no cover - optimizer only wraps shardable
            yield from self.rows(node.child)
            return
        yield from run_sharded(
            self._db,
            spec,
            shards=node.shards,
            backend=node.backend,
            split=node.split,
            timeout_s=node.config.timeout_s,
            fallback=node.config.fallback,
            serial=lambda: self.rows(node.child),
        )

    # -- streaming operators -------------------------------------------

    def _select(self, node: Select) -> Iterator[tuple]:
        columns = _columns_of(self._db, node.child)
        predicate = node.predicate
        if isinstance(predicate, ColumnPredicate):
            index = columns.index(predicate.column)
            cell_test = predicate.predicate
            for row in self.rows(node.child):
                if cell_test(row[index]):
                    yield row
            return
        for row in self.rows(node.child):
            if predicate(dict(zip(columns, row))):
                yield row

    def _project(self, node: Project) -> Iterator[tuple]:
        child_columns = _columns_of(self._db, node.child)
        indices = [child_columns.index(column) for column in node.columns]
        seen: set[tuple] = set()
        for row in self.rows(node.child):
            key = tuple(_cell_key(row[i]) for i in indices)
            if key in seen:
                continue
            seen.add(key)
            yield tuple(row[i] for i in indices)

    def _reorder(self, node: Reorder) -> Iterator[tuple]:
        child_columns = _columns_of(self._db, node.child)
        indices = [child_columns.index(column) for column in node.columns]
        for row in self.rows(node.child):
            yield tuple(row[i] for i in indices)

    def _join(self, node: Join) -> Iterator[tuple]:
        left_columns = _columns_of(self._db, node.left)
        right_columns = _columns_of(self._db, node.right)
        shared = [column for column in left_columns if column in right_columns]
        right_only = [c for c in right_columns if c not in shared]
        left_key = [left_columns.index(column) for column in shared]
        right_key = [right_columns.index(column) for column in shared]
        right_extra = [right_columns.index(column) for column in right_only]
        memo: dict[int, int] = {}
        left_estimate = _estimate(self._db, node.left, memo)
        right_estimate = _estimate(self._db, node.right, memo)

        # index nested-loop join: when one input is far smaller and the
        # other is an association scan (possibly under selections, which
        # then apply to the few fetched rows) joined through a role
        # column, fetch only the incident relationships (incidence
        # index) per driving row instead of scanning the whole family.
        # The threshold compares the driving side against the *scan*
        # size of the association (what a hash join would actually
        # read), not the post-selection output estimate — a highly
        # selective filter over a huge scan still costs the scan
        # an index join never scans the association, so a Parallel
        # wrapper on the scan side is looked through (and dropped when
        # the index join is chosen — probing incidence lists beats
        # sharding a scan the join would not perform)
        if len(shared) == 1:
            right_base, right_filter = self._peel_selects(
                _strip_parallel(node.right), right_columns
            )
            if (
                isinstance(right_base, RelScan)
                and left_estimate
                <= self._db.indexes.association_size(right_base.association) // 2
                and shared[0] in right_columns[:2]
            ):
                yield from self._index_join(
                    drive=node.left,
                    scan=right_base,
                    scan_filter=right_filter,
                    position=right_columns[:2].index(shared[0]),
                    source=left_columns.index(shared[0]),
                    # the scanned side is the join's right: keep its
                    # extra columns after the driving (left) row
                    emit=lambda drive_row, rel_row: drive_row
                    + tuple(rel_row[i] for i in right_extra),
                )
                return
            left_base, left_filter = self._peel_selects(
                _strip_parallel(node.left), left_columns
            )
            if (
                isinstance(left_base, RelScan)
                and right_estimate
                <= self._db.indexes.association_size(left_base.association) // 2
                and shared[0] in left_columns[:2]
            ):
                yield from self._index_join(
                    drive=node.right,
                    scan=left_base,
                    scan_filter=left_filter,
                    position=left_columns[:2].index(shared[0]),
                    source=right_columns.index(shared[0]),
                    # the scanned side is the join's left: its row
                    # leads, the driving (right) row supplies extras
                    emit=lambda drive_row, rel_row: rel_row
                    + tuple(drive_row[i] for i in right_extra),
                )
                return

        # hash join: materialize (build) the smaller estimated side,
        # stream (probe) the larger — the pipeline breaker is half-size
        build_left = left_estimate < right_estimate
        if build_left:
            table: dict[tuple, list[tuple]] = {}
            for row in self.rows(node.left):
                key = tuple(_cell_key(row[i]) for i in left_key)
                table.setdefault(key, []).append(row)
            for row in self.rows(node.right):
                key = tuple(_cell_key(row[i]) for i in right_key)
                extra = tuple(row[i] for i in right_extra)
                for match in table.get(key, ()):
                    yield match + extra
        else:
            table = {}
            for row in self.rows(node.right):
                key = tuple(_cell_key(row[i]) for i in right_key)
                table.setdefault(key, []).append(row)
            for row in self.rows(node.left):
                key = tuple(_cell_key(row[i]) for i in left_key)
                for match in table.get(key, ()):
                    yield row + tuple(match[i] for i in right_extra)

    def _index_join(
        self,
        *,
        drive: PlanNode,
        scan: RelScan,
        scan_filter: Callable[[tuple], bool],
        position: int,
        source: int,
        emit: Callable[[tuple, tuple], tuple],
    ) -> Iterator[tuple]:
        """Index nested-loop join core: stream *drive*, probe incidence.

        Both join orientations share this loop; only the parameters
        (which role position anchors, where the anchor sits in the
        driving row, and how the output row is assembled) differ.
        """
        for row in self.rows(drive):
            anchor = row[source]
            if not isinstance(anchor, SeedObject):
                continue  # value cell: can never match a role
            for rel_row in self._incident_rows(scan, anchor, position):
                if scan_filter(rel_row):
                    yield emit(row, rel_row)

    @staticmethod
    def _peel_selects(
        node: PlanNode, columns: tuple[str, ...]
    ) -> tuple[PlanNode, Callable[[tuple], bool]]:
        """Strip Select wrappers, returning the base and a row filter.

        Selections preserve columns, so the peeled predicates can be
        re-applied to rows produced for the base node.
        """
        tests: list[Callable[[tuple], bool]] = []
        while isinstance(node, Select):
            predicate = node.predicate
            if isinstance(predicate, ColumnPredicate):
                index = columns.index(predicate.column)
                tests.append(
                    lambda row, i=index, f=predicate.predicate: bool(f(row[i]))
                )
            else:
                tests.append(
                    lambda row, f=predicate: bool(f(dict(zip(columns, row))))
                )
            node = node.child
        if not tests:
            return node, lambda row: True
        return node, lambda row: all(test(row) for test in tests)

    def _incident_rows(
        self, scan: RelScan, anchor: SeedObject, position: int
    ) -> Iterator[tuple]:
        """RelScan rows whose role at *position* binds *anchor*.

        Served from the incidence index — O(degree of *anchor*) instead
        of O(association). The bound-object identity check (not a role
        lookup) keeps self-loop relationships correct.
        """
        wanted = self._db.schema.association(scan.association)
        for rel in self._db.relationships_of_object(anchor, scan.association):
            if not scan.include_specials and rel.association is not wanted:
                continue
            if rel.bound_at(position).oid != anchor.oid:
                continue
            yield relationship_row(rel, scan.with_attributes)

    def _union(self, node: Union) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for side in (node.left, node.right):
            for row in self.rows(side):
                key = tuple(_cell_key(cell) for cell in row)
                if key not in seen:
                    seen.add(key)
                    yield row

    def _difference(self, node: Difference) -> Iterator[tuple]:
        exclude = {
            tuple(_cell_key(cell) for cell in row) for row in self.rows(node.right)
        }
        for row in self.rows(node.left):
            key = tuple(_cell_key(cell) for cell in row)
            if key not in exclude:
                exclude.add(key)  # set semantics: first occurrence only
                yield row

    def _values(self, node: Values) -> Iterator[tuple]:
        child_columns = _columns_of(self._db, node.child)
        source = child_columns.index(node.column)
        steps = node.role_path.split(".")
        for row in self.rows(node.child):
            obj = row[source]
            if not isinstance(obj, SeedObject):
                raise QueryError(f"column {node.column!r} does not hold objects")
            for value in dereference(obj, steps):
                yield row + (value,)


def execute_node(db: SeedDatabase, node: PlanNode) -> Relation:
    """Materialize an arbitrary plan node against *db*.

    Runs the node exactly as given — no optimization, no cache. Used by
    benchmarks and tests to execute a previously-optimized ("pinned")
    tree against changed data, e.g. to measure what a stale cached plan
    would have cost without drift invalidation.
    """
    return Relation(_columns_of(db, node), tuple(_Executor(db).rows(node)))


# ----------------------------------------------------------------------
# explain
# ----------------------------------------------------------------------


def _node_label(db: SeedDatabase, node: PlanNode, memo: dict[int, int]) -> str:
    estimate = _estimate(db, node, memo)
    if isinstance(node, ExtentScan):
        detail = f"ExtentScan {node.class_name} as {node.column}"
        if not node.include_specials:
            detail += " exact"
        if node.prefix is not None:
            detail += f" prefix={node.prefix!r}"
    elif isinstance(node, RelScan):
        roles = ", ".join(_columns_of(db, node))
        detail = f"RelScan {node.association} ({roles})"
    elif isinstance(node, Select):
        detail = f"Select {describe_predicate(node.predicate)}"
    elif isinstance(node, Project):
        detail = f"Project [{', '.join(node.columns)}]"
    elif isinstance(node, Rename):
        pairs = ", ".join(f"{old}->{new}" for old, new in node.renames)
        detail = f"Rename {pairs}"
    elif isinstance(node, Reorder):
        detail = f"Reorder [{', '.join(node.columns)}]"
    elif isinstance(node, Join):
        left = _columns_of(db, node.left)
        shared = [c for c in _columns_of(db, node.right) if c in left]
        detail = f"Join on [{', '.join(shared)}]" if shared else "Join cartesian"
    elif isinstance(node, Union):
        detail = "Union"
    elif isinstance(node, Difference):
        detail = "Difference"
    elif isinstance(node, Values):
        detail = f"Values {node.column}.{node.role_path} -> {node.into}"
    elif isinstance(node, Parallel):
        spec = _shard_spec(db, node.child)
        scanned = _base_scan_size(db, spec) if spec is not None else estimate
        per_shard = scanned // node.shards
        detail = (
            f"Parallel shards={node.shards} backend={node.backend} "
            f"split={node.split} "
            f"per-shard~{per_shard}+{node.config.dispatch_overhead} dispatch"
        )
    else:  # pragma: no cover - exhaustive
        raise AssertionError(f"unhandled node {type(node).__name__}")
    return f"{detail}  est~{estimate}"


def _children_of(node: PlanNode) -> tuple[PlanNode, ...]:
    if isinstance(node, (Select, Project, Rename, Values, Reorder, Parallel)):
        return (node.child,)
    if isinstance(node, (Join, Union, Difference)):
        return (node.left, node.right)
    return ()


def _render(
    db: SeedDatabase,
    node: PlanNode,
    memo: dict[int, int],
    lines: list[str],
    indent: str,
    branch: str,
    follow: str,
) -> None:
    lines.append(indent + branch + _node_label(db, node, memo))
    children = _children_of(node)
    for position, child in enumerate(children):
        last = position == len(children) - 1
        _render(
            db,
            child,
            memo,
            lines,
            indent + follow,
            "└─ " if last else "├─ ",
            "   " if last else "│  ",
        )


def explain(db: SeedDatabase, node: PlanNode) -> str:
    """Deterministic multi-line rendering of a plan tree with estimates."""
    memo: dict[int, int] = {}
    lines: list[str] = []
    _render(db, node, memo, lines, "", "", "")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the builder API (mirrors Relation)
# ----------------------------------------------------------------------


#: sentinel distinguishing "parameter not passed" from an explicit None
_UNSET: Any = object()


class Plan:
    """An immutable logical query plan bound to one database.

    Composes exactly like :class:`~repro.core.query.algebra.Relation`
    (``select``/``project``/``rename``/``join``/``union``/``difference``/
    ``values``) but builds a plan tree instead of evaluating; call
    :meth:`execute` for a materialized ``Relation``, :meth:`rows` to
    stream, or :meth:`explain` for the optimized plan tree.
    """

    def __init__(
        self,
        db: SeedDatabase,
        node: PlanNode,
        parallel: Optional[ParallelConfig] = None,
    ) -> None:
        self._db = db
        self.node = node
        #: default ParallelConfig for evaluation (None = serial); every
        #: composition inherits it, every evaluation can override it
        self._parallel = parallel

    # -- composition (mirrors Relation) --------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        return _columns_of(self._db, self.node)

    def select(self, predicate: Callable[[dict[str, Any]], bool]) -> "Plan":
        """Keep rows whose column dict satisfies *predicate*.

        Pass :func:`on` (a :class:`ColumnPredicate`) to give the
        optimizer pushdown and indexed-rewrite opportunities; plain
        row callables are executed as opaque filters.
        """
        if isinstance(predicate, ColumnPredicate):
            self._require_column(predicate.column)
        return Plan(self._db, Select(self.node, predicate), self._parallel)

    def project(self, *columns: str) -> "Plan":
        """Keep only *columns* (duplicate rows removed)."""
        for column in columns:
            self._require_column(column)
        if len(set(columns)) != len(columns):
            raise QueryError(f"duplicate column names: {tuple(columns)}")
        return Plan(self._db, Project(self.node, tuple(columns)), self._parallel)

    def rename(self, **renames: str) -> "Plan":
        """Rename columns: ``plan.rename(by="reader")``."""
        for old in renames:
            self._require_column(old)
        renamed = tuple(
            renames.get(column, column) for column in self.columns
        )
        if len(set(renamed)) != len(renamed):
            raise QueryError(f"duplicate column names: {renamed}")
        return Plan(
            self._db,
            Rename(self.node, tuple(sorted(renames.items()))),
            self._parallel,
        )

    def join(self, other: "Plan") -> "Plan":
        """Natural join on all shared columns (object identity)."""
        self._require_same_db(other)
        return Plan(self._db, Join(self.node, other.node), self._parallel)

    def union(self, other: "Plan") -> "Plan":
        """Set union (columns must match)."""
        self._require_same_db(other)
        self._require_same_columns(other)
        return Plan(self._db, Union(self.node, other.node), self._parallel)

    def difference(self, other: "Plan") -> "Plan":
        """Set difference (columns must match)."""
        self._require_same_db(other)
        self._require_same_columns(other)
        return Plan(self._db, Difference(self.node, other.node), self._parallel)

    def values(self, column: str, role_path: str, into: str) -> "Plan":
        """Add a column of values dereferenced from an object column."""
        self._require_column(column)
        if not role_path:
            raise QueryError("empty role path")
        if into in self.columns:
            raise QueryError(f"duplicate column names: {self.columns + (into,)}")
        return Plan(
            self._db,
            Values(self.node, column, role_path, into),
            self._parallel,
        )

    # -- evaluation ----------------------------------------------------

    def _parallel_config(self, parallel: Any) -> Optional[ParallelConfig]:
        return self._parallel if parallel is _UNSET else parallel

    def optimized(self, *, parallel: Any = _UNSET) -> PlanNode:
        """The optimizer's output for this plan (a new node tree).

        Served from the database's :class:`PlanCache` when the logical
        tree is keyable, so persistent/repeated queries skip
        re-optimization. *parallel* overrides the plan's default
        :class:`ParallelConfig` (pass ``None`` to force serial).
        """
        return plan_cache(self._db).optimized(
            self._db, self.node, self._parallel_config(parallel)
        )

    def explain(self, *, optimized: bool = True, parallel: Any = _UNSET) -> str:
        """Deterministic plan-tree rendering with cardinality estimates.

        Example::

            >>> print(plan(db).extent("Data", column="d")
            ...          .select(on("d", name_prefix("Al")))
            ...          .explain())
            ExtentScan Data as d prefix='Al'  est~1
        """
        node = self.optimized(parallel=parallel) if optimized else self.node
        return explain(self._db, node)

    def rows(
        self, *, optimized: bool = True, parallel: Any = _UNSET
    ) -> Iterator[tuple]:
        """Stream result rows (tuples aligned with :attr:`columns`)."""
        node = self.optimized(parallel=parallel) if optimized else self.node
        return _Executor(self._db).rows(node)

    def execute(
        self, *, optimized: bool = True, parallel: Any = _UNSET
    ) -> Relation:
        """Materialize the (by default optimized) plan into a Relation."""
        return Relation(
            self.columns,
            tuple(self.rows(optimized=optimized, parallel=parallel)),
        )

    def __iter__(self) -> Iterator[dict[str, Any]]:
        columns = self.columns
        for row in self.rows():
            yield dict(zip(columns, row))

    # -- internals -----------------------------------------------------

    def _require_column(self, column: str) -> None:
        columns = self.columns
        if column not in columns:
            raise QueryError(
                f"no column {column!r} (columns: {', '.join(columns)})"
            )

    def _require_same_columns(self, other: "Plan") -> None:
        if self.columns != other.columns:
            raise QueryError(
                f"column mismatch: {self.columns} vs {other.columns}"
            )

    def _require_same_db(self, other: "Plan") -> None:
        if other._db is not self._db:
            raise QueryError("cannot combine plans over different databases")


class PlanBuilder:
    """Entry point producing leaf plans for one database.

    A :class:`ParallelConfig` given here becomes the default for every
    plan built through the builder (inherited by composition, still
    overridable per evaluation call).
    """

    def __init__(
        self, db: SeedDatabase, parallel: Optional[ParallelConfig] = None
    ) -> None:
        self._db = db
        self._parallel = parallel

    def extent(
        self,
        class_name: str,
        *,
        column: Optional[str] = None,
        include_specials: bool = True,
    ) -> Plan:
        """One-column plan over a class's live instances."""
        self._db.schema.entity_class(class_name)  # validate early
        name = column or class_name.lower()
        return Plan(
            self._db,
            ExtentScan(class_name, name, include_specials),
            self._parallel,
        )

    def relationship(
        self,
        association: str,
        *,
        include_specials: bool = True,
        with_attributes: Sequence[str] = (),
    ) -> Plan:
        """Two-column plan over an association's instances."""
        assoc = self._db.schema.association(association)  # validate early
        columns = assoc.role_names() + tuple(with_attributes)
        if len(set(columns)) != len(columns):
            raise QueryError(f"duplicate column names: {columns}")
        return Plan(
            self._db,
            RelScan(association, include_specials, tuple(with_attributes)),
            self._parallel,
        )


def plan(
    db: SeedDatabase, parallel: Optional[ParallelConfig] = None
) -> PlanBuilder:
    """Start building a planned query: ``plan(db).extent("Data")...``.

    With *parallel*, evaluation may use the sharded worker runtime
    (cost-gated): ``plan(db, ParallelConfig()).extent(...)``.
    """
    return PlanBuilder(db, parallel)
