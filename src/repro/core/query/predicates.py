"""Predicate combinators over objects and relationships.

The SEED prototype only offered retrieval by name; this module is part
of the query extension (the paper cites Parent & Spaccapietra's
entity-relationship algebra as the natural next step). Predicates are
small composable callables used by :mod:`repro.core.query.retrieval`
selections and :mod:`repro.core.query.algebra` operations.

Per the paper's stated semantics for incomplete data, "an undefined
object matches nothing": value predicates are false for undefined
values rather than raising.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional

from repro.core.objects import SeedObject

__all__ = [
    "Predicate",
    "true",
    "false",
    "both",
    "either",
    "negate",
    "name_is",
    "name_matches",
    "in_class",
    "has_value",
    "value_is",
    "value_matches",
    "sub_object_value",
    "participates_in",
]

#: a predicate over objects
Predicate = Callable[[SeedObject], bool]


def true(_obj: SeedObject) -> bool:
    """Match everything."""
    return True


def false(_obj: SeedObject) -> bool:
    """Match nothing."""
    return False


def both(*predicates: Predicate) -> Predicate:
    """Conjunction of *predicates*."""

    def check(obj: SeedObject) -> bool:
        return all(predicate(obj) for predicate in predicates)

    return check


def either(*predicates: Predicate) -> Predicate:
    """Disjunction of *predicates*."""

    def check(obj: SeedObject) -> bool:
        return any(predicate(obj) for predicate in predicates)

    return check


def negate(predicate: Predicate) -> Predicate:
    """Negation of *predicate*."""

    def check(obj: SeedObject) -> bool:
        return not predicate(obj)

    return check


def name_is(name: str) -> Predicate:
    """Match objects whose full dotted name equals *name*."""

    def check(obj: SeedObject) -> bool:
        return str(obj.name) == name

    return check


def name_matches(pattern: str) -> Predicate:
    """Match objects whose dotted name matches regex *pattern*."""
    compiled = re.compile(pattern)

    def check(obj: SeedObject) -> bool:
        return compiled.search(str(obj.name)) is not None

    return check


def in_class(class_name: str, *, include_specials: bool = True) -> Predicate:
    """Match instances of *class_name* (specializations count by default)."""

    def check(obj: SeedObject) -> bool:
        schema = obj._database.schema  # noqa: SLF001 - query-internal access
        wanted = schema.entity_class(class_name)
        if include_specials:
            return obj.entity_class.is_kind_of(wanted)
        return obj.entity_class is wanted

    return check


def has_value(_obj: Optional[SeedObject] = None) -> Any:
    """Match objects whose value is defined.

    Usable directly (``has_value`` as a predicate) or called with no
    argument to obtain the predicate explicitly.
    """
    if _obj is None:
        return lambda obj: obj.value is not None
    return _obj.value is not None


def value_is(expected: Any) -> Predicate:
    """Match defined values equal to *expected* (undefined matches nothing)."""

    def check(obj: SeedObject) -> bool:
        return obj.value is not None and obj.value == expected

    return check


def value_matches(pattern: str) -> Predicate:
    """Match defined string values against regex *pattern*."""
    compiled = re.compile(pattern)

    def check(obj: SeedObject) -> bool:
        return isinstance(obj.value, str) and compiled.search(obj.value) is not None

    return check


def sub_object_value(role_path: str, expected: Any) -> Predicate:
    """Match objects with a sub-object at *role_path* holding *expected*.

    ``sub_object_value("Text.Selector", "Representation")`` matches the
    figure-1 ``Alarms`` object. Effective (pattern-inherited) sub-objects
    count; an undefined or missing sub-object matches nothing.
    """
    steps = role_path.split(".")

    def check(obj: SeedObject) -> bool:
        frontier = [obj]
        for step in steps:
            frontier = [
                child
                for node in frontier
                for child in node.effective_sub_objects(step)
            ]
            if not frontier:
                return False
        return any(node.value is not None and node.value == expected for node in frontier)

    return check


def participates_in(association: str, role: Optional[str] = None) -> Predicate:
    """Match objects bound in at least one *association* relationship.

    With *role*, the object must be bound in that role. Effective
    (pattern-expanded) relationships count.
    """

    def check(obj: SeedObject) -> bool:
        db = obj._database  # noqa: SLF001 - query-internal access
        wanted = db.schema.association(association)
        for rel in db.patterns.effective_relationships(obj, wanted):
            if role is None:
                return True
            bound = rel.bound(role)  # type: ignore[union-attr]
            if bound is obj:
                return True
        return False

    return check
