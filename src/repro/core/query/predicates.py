"""Predicate combinators over objects and relationships.

The SEED prototype only offered retrieval by name; this module is part
of the query extension (the paper cites Parent & Spaccapietra's
entity-relationship algebra as the natural next step). Predicates are
small composable callables used by :mod:`repro.core.query.retrieval`
selections, :mod:`repro.core.query.algebra` operations, and the
cost-based planner in :mod:`repro.core.query.planner`.

Predicates are *structured*: each factory returns an
:class:`ObjectPredicate` — still a plain callable ``obj -> bool``, but
one the planner can inspect. :class:`NamePrefix` and :class:`InClass`
carry enough metadata to be rewritten into indexed scans
(``objects_by_name_prefix`` / ``extent_oids``); :class:`HasValue`,
:class:`ValueEquals`, and :class:`ParticipatesIn` carry enough to be
costed from the index layer's value and participation histograms
(selection selectivity instead of a fixed heuristic); and :class:`And`
/ :class:`Or` / :class:`Not` preserve the boolean structure so a
conjunction can be split into an indexable part and a residual filter.
Every predicate renders a deterministic :meth:`~ObjectPredicate.describe`
string, which keeps ``explain()`` output stable across runs.

Per the paper's stated semantics for incomplete data, "an undefined
object matches nothing": value predicates are false for undefined
values rather than raising.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.objects import SeedObject

__all__ = [
    "Predicate",
    "ObjectPredicate",
    "FunctionPredicate",
    "And",
    "Or",
    "Not",
    "NamePrefix",
    "InClass",
    "HasValue",
    "ValueEquals",
    "ParticipatesIn",
    "describe_predicate",
    "narrowed_class",
    "true",
    "false",
    "both",
    "either",
    "negate",
    "name_is",
    "name_prefix",
    "name_matches",
    "in_class",
    "has_value",
    "value_is",
    "value_matches",
    "sub_object_value",
    "participates_in",
]

#: a predicate over objects (any callable works; structured ones optimize)
Predicate = Callable[[SeedObject], bool]


class ObjectPredicate:
    """A callable object predicate the planner can inspect.

    Subclasses implement ``__call__`` (the test) and :meth:`describe`
    (a deterministic rendering used by ``explain()`` and golden plan
    snapshots — never ``repr`` a closure, addresses vary per run).
    """

    def __call__(self, obj: SeedObject) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


def describe_predicate(predicate: Any) -> str:
    """Deterministic description of any predicate-like callable."""
    if isinstance(predicate, ObjectPredicate):
        return predicate.describe()
    if hasattr(predicate, "describe"):
        return predicate.describe()
    name = getattr(predicate, "__name__", None)
    return name if name else "predicate"


@dataclass(frozen=True)
class FunctionPredicate(ObjectPredicate):
    """Wrap an opaque callable with a stable description."""

    fn: Predicate
    description: str

    def __call__(self, obj: SeedObject) -> bool:
        return bool(self.fn(obj))

    def describe(self) -> str:
        return self.description


@dataclass(frozen=True)
class And(ObjectPredicate):
    """Conjunction; the planner splits it into indexable + residual parts."""

    parts: tuple[Predicate, ...]

    def __call__(self, obj: SeedObject) -> bool:
        return all(part(obj) for part in self.parts)

    def describe(self) -> str:
        return "(" + " and ".join(describe_predicate(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(ObjectPredicate):
    """Disjunction."""

    parts: tuple[Predicate, ...]

    def __call__(self, obj: SeedObject) -> bool:
        return any(part(obj) for part in self.parts)

    def describe(self) -> str:
        return "(" + " or ".join(describe_predicate(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Not(ObjectPredicate):
    """Negation."""

    part: Predicate

    def __call__(self, obj: SeedObject) -> bool:
        return not self.part(obj)

    def describe(self) -> str:
        return f"not {describe_predicate(self.part)}"


@dataclass(frozen=True)
class NamePrefix(ObjectPredicate):
    """Match objects whose full dotted name starts with *prefix*.

    Recognized by the planner: a selection with this predicate over an
    extent of independent classes becomes a bisected name-index scan.
    """

    prefix: str

    def __call__(self, obj: SeedObject) -> bool:
        return str(obj.name).startswith(self.prefix)

    def describe(self) -> str:
        return f"name^={self.prefix!r}"


@dataclass(frozen=True)
class InClass(ObjectPredicate):
    """Match instances of *class_name* (specializations by default).

    Recognized by the planner: a selection with this predicate over an
    extent scan narrows the scanned extent (``extent_oids``) instead of
    testing every row.
    """

    class_name: str
    include_specials: bool = True

    def __call__(self, obj: SeedObject) -> bool:
        schema = obj._database.schema  # noqa: SLF001 - query-internal access
        wanted = schema.entity_class(self.class_name)
        if self.include_specials:
            return obj.entity_class.is_kind_of(wanted)
        return obj.entity_class is wanted

    def describe(self) -> str:
        exact = "" if self.include_specials else ", exact"
        return f"in_class({self.class_name}{exact})"


@dataclass(frozen=True)
class HasValue(ObjectPredicate):
    """Match objects whose value is defined.

    Recognized by the planner's cost model: selectivity is the class's
    defined-value fraction read from the value histogram.
    """

    def __call__(self, obj: SeedObject) -> bool:
        return obj.value is not None

    def describe(self) -> str:
        return "has_value"


@dataclass(frozen=True)
class ValueEquals(ObjectPredicate):
    """Match defined values equal to *expected* (undefined matches nothing).

    Recognized by the planner's cost model: selectivity comes from the
    class's top-K + remainder value histogram.
    """

    expected: Any

    def __call__(self, obj: SeedObject) -> bool:
        return obj.value is not None and obj.value == self.expected

    def describe(self) -> str:
        return f"value=={self.expected!r}"


@dataclass(frozen=True)
class ParticipatesIn(ObjectPredicate):
    """Match objects bound in at least one *association* relationship.

    With *role*, the object must be bound in that role. Effective
    (pattern-expanded) relationships count. Recognized by the planner's
    cost model: selectivity is the distinct-participant count over the
    extent size.
    """

    association: str
    role: Optional[str] = None

    def __call__(self, obj: SeedObject) -> bool:
        db = obj._database  # noqa: SLF001 - query-internal access
        wanted = db.schema.association(self.association)
        for rel in db.patterns.effective_relationships(obj, wanted):
            if self.role is None:
                return True
            bound = rel.bound(self.role)  # type: ignore[union-attr]
            if bound is obj:
                return True
        return False

    def describe(self) -> str:
        at_role = f", {self.role}" if self.role else ""
        return f"participates_in({self.association}{at_role})"


def narrowed_class(db: Any, base_name: str, predicate: InClass) -> Optional[str]:
    """Class the extent of *base_name* narrows to under *predicate*.

    Returns the narrower class name when the predicate implies a
    sub-extent, *base_name* itself when the scanned class already
    implies the predicate (the test can be dropped), or None when the
    classes are unrelated and the predicate must stay a filter. Shared
    by the planner's scan rewrite and ``Retrieval``'s fast paths so the
    narrowing semantics cannot drift apart.
    """
    wanted = db.schema.entity_class(predicate.class_name)
    base = db.schema.entity_class(base_name)
    if wanted.is_kind_of(base):
        return predicate.class_name
    if base.is_kind_of(wanted):
        return base_name
    return None


def true(_obj: SeedObject) -> bool:
    """Match everything."""
    return True


def false(_obj: SeedObject) -> bool:
    """Match nothing."""
    return False


def both(*predicates: Predicate) -> And:
    """Conjunction of *predicates*."""
    return And(tuple(predicates))


def either(*predicates: Predicate) -> Or:
    """Disjunction of *predicates*."""
    return Or(tuple(predicates))


def negate(predicate: Predicate) -> Not:
    """Negation of *predicate*."""
    return Not(predicate)


def name_is(name: str) -> ObjectPredicate:
    """Match objects whose full dotted name equals *name*."""
    return FunctionPredicate(
        lambda obj: str(obj.name) == name, f"name=={name!r}"
    )


def name_prefix(prefix: str) -> NamePrefix:
    """Match objects whose full dotted name starts with *prefix*."""
    return NamePrefix(prefix)


def name_matches(pattern: str) -> ObjectPredicate:
    """Match objects whose dotted name matches regex *pattern*."""
    compiled = re.compile(pattern)
    return FunctionPredicate(
        lambda obj: compiled.search(str(obj.name)) is not None,
        f"name~{pattern!r}",
    )


def in_class(class_name: str, *, include_specials: bool = True) -> InClass:
    """Match instances of *class_name* (specializations count by default)."""
    return InClass(class_name, include_specials)


def has_value(_obj: Optional[SeedObject] = None) -> Any:
    """Match objects whose value is defined.

    Usable directly (``has_value`` as a predicate) or called with no
    argument to obtain the structured predicate explicitly.
    """
    if _obj is None:
        return HasValue()
    return _obj.value is not None


def value_is(expected: Any) -> ObjectPredicate:
    """Match defined values equal to *expected* (undefined matches nothing)."""
    return ValueEquals(expected)


def value_matches(pattern: str) -> ObjectPredicate:
    """Match defined string values against regex *pattern*."""
    compiled = re.compile(pattern)
    return FunctionPredicate(
        lambda obj: isinstance(obj.value, str)
        and compiled.search(obj.value) is not None,
        f"value~{pattern!r}",
    )


def sub_object_value(role_path: str, expected: Any) -> ObjectPredicate:
    """Match objects with a sub-object at *role_path* holding *expected*.

    ``sub_object_value("Text.Selector", "Representation")`` matches the
    figure-1 ``Alarms`` object. Effective (pattern-inherited) sub-objects
    count; an undefined or missing sub-object matches nothing.
    """
    steps = role_path.split(".")

    def check(obj: SeedObject) -> bool:
        frontier = [obj]
        for step in steps:
            frontier = [
                child
                for node in frontier
                for child in node.effective_sub_objects(step)
            ]
            if not frontier:
                return False
        return any(node.value is not None and node.value == expected for node in frontier)

    return FunctionPredicate(check, f"{role_path}=={expected!r}")


def participates_in(association: str, role: Optional[str] = None) -> ParticipatesIn:
    """Match objects bound in at least one *association* relationship.

    With *role*, the object must be bound in that role. Effective
    (pattern-expanded) relationships count.
    """
    return ParticipatesIn(association, role)
