"""An entity-relationship algebra over SEED databases (query extension).

The prototype did not support complex queries; the paper points to
Parent & Spaccapietra's *entity-relationship algebra* (reference [10])
as the suitable formalism. This module implements a compact ER algebra:

* a :class:`Relation` is a named-column table whose cells are objects or
  values;
* :func:`extent` builds a one-column relation from a class extent;
* :func:`relationship_relation` builds a two-column relation from an
  association's instances (columns named by the roles);
* relations compose with ``select``, ``project``, ``rename``, ``join``
  (natural join on shared columns, by object identity), ``union``,
  ``difference``, and ``values`` (dereference a role path into values).

The paper's incomplete-data semantics hold: "Taking joins or cartesian
products is not affected by undefined items. This is due to the fact
that entity-relationship based models define these operations on
existing relationships only" — relationship relations contain exactly
the existing (effective) relationships, and undefined values never
satisfy a selection predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.core.database import SeedDatabase
from repro.core.errors import QueryError
from repro.core.objects import SeedObject

__all__ = [
    "Relation",
    "extent",
    "relationship_relation",
    "dereference",
    "relationship_row",
]


def dereference(obj: SeedObject, steps: Sequence[str]) -> Iterator[Any]:
    """Defined values at a role path below *obj* (undefined skipped).

    Shared by the eager :meth:`Relation.values` and the planner's
    streaming ``Values`` operator so the two evaluation paths cannot
    drift apart.
    """
    frontier = [obj]
    for step in steps:
        frontier = [
            child
            for node in frontier
            for child in node.effective_sub_objects(step)
        ]
    for node in frontier:
        if node.value is not None:
            yield node.value


def relationship_row(rel: Any, attributes: Sequence[str]) -> tuple:
    """The relation row of one relationship: both bindings + attributes.

    Shared by :func:`relationship_relation` and the planner's
    association scans (full and incidence-indexed).
    """
    row = [rel.bound_at(0), rel.bound_at(1)]
    row.extend(rel.attribute(attr) for attr in attributes)
    return tuple(row)


@dataclass(frozen=True)
class Relation:
    """An immutable named-column table of query results.

    Rows are tuples aligned with :attr:`columns`. Cells hold
    :class:`SeedObject` instances (for entity columns) or plain values
    (for value columns). Equality of object cells is object identity —
    two rows join on a shared column when they reference the same
    object.
    """

    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise QueryError(f"duplicate column names: {self.columns}")
        for row in self.rows:
            if len(row) != len(self.columns):
                raise QueryError(
                    f"row width {len(row)} does not match columns "
                    f"{self.columns}"
                )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of(cls, columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> "Relation":
        """Build a relation from loose sequences."""
        return cls(tuple(columns), tuple(tuple(row) for row in rows))

    # -- algebra ----------------------------------------------------------------

    def select(self, predicate: Callable[[dict[str, Any]], bool]) -> "Relation":
        """Keep rows whose column dict satisfies *predicate*."""
        kept = tuple(
            row for row in self.rows if predicate(dict(zip(self.columns, row)))
        )
        return Relation(self.columns, kept)

    def project(self, *columns: str) -> "Relation":
        """Keep only *columns* (duplicates removed)."""
        indices = [self._index(column) for column in columns]
        seen: set[tuple] = set()
        rows = []
        for row in self.rows:
            projected = tuple(self._cell_key(row[i]) for i in indices)
            if projected in seen:
                continue
            seen.add(projected)
            rows.append(tuple(row[i] for i in indices))
        return Relation(tuple(columns), tuple(rows))

    def rename(self, **renames: str) -> "Relation":
        """Rename columns: ``relation.rename(by="reader")``."""
        for old in renames:
            self._index(old)  # validate
        new_columns = tuple(renames.get(column, column) for column in self.columns)
        return Relation(new_columns, self.rows)

    def join(self, other: "Relation") -> "Relation":
        """Natural join on all shared columns (object identity / equality).

        With no shared columns this degenerates to a cartesian product,
        mirroring classical relational algebra.
        """
        shared = [column for column in self.columns if column in other.columns]
        other_only = [column for column in other.columns if column not in shared]
        result_columns = self.columns + tuple(other_only)
        index: dict[tuple, list[tuple]] = {}
        shared_other_indices = [other._index(column) for column in shared]
        for row in other.rows:
            key = tuple(self._cell_key(row[i]) for i in shared_other_indices)
            index.setdefault(key, []).append(row)
        shared_self_indices = [self._index(column) for column in shared]
        other_only_indices = [other._index(column) for column in other_only]
        rows = []
        for row in self.rows:
            key = tuple(self._cell_key(row[i]) for i in shared_self_indices)
            for match in index.get(key, ()):
                rows.append(row + tuple(match[i] for i in other_only_indices))
        return Relation(result_columns, tuple(rows))

    def union(self, other: "Relation") -> "Relation":
        """Set union (columns must match)."""
        self._require_same_columns(other)
        seen: set[tuple] = set()
        rows = []
        for row in self.rows + other.rows:
            key = tuple(self._cell_key(cell) for cell in row)
            if key not in seen:
                seen.add(key)
                rows.append(row)
        return Relation(self.columns, tuple(rows))

    def difference(self, other: "Relation") -> "Relation":
        """Set difference (columns must match).

        Set semantics, symmetric with :meth:`union`: duplicate kept rows
        collapse to their first occurrence (previously duplicates leaked
        through, making ``r.difference(empty)`` disagree with
        ``r.union(empty)`` on relations holding duplicate rows).
        """
        self._require_same_columns(other)
        exclude = {
            tuple(self._cell_key(cell) for cell in row) for row in other.rows
        }
        rows = []
        for row in self.rows:
            key = tuple(self._cell_key(cell) for cell in row)
            if key not in exclude:
                exclude.add(key)
                rows.append(row)
        return Relation(self.columns, tuple(rows))

    def values(self, column: str, role_path: str, into: str) -> "Relation":
        """Add a column of values dereferenced from an object column.

        ``rel.values("from", "Text.Selector", into="selector")`` pulls
        each object's (first defined) ``Text.Selector`` value; rows whose
        object lacks a defined value are dropped — undefined matches
        nothing.
        """
        source = self._index(column)
        if not role_path:
            # "".split(".") is [""], which silently matched no role and
            # dropped every row; reject the degenerate path instead
            raise QueryError("empty role path")
        if into in self.columns:
            raise QueryError(f"duplicate column names: {self.columns + (into,)}")
        steps = role_path.split(".")
        rows = []
        for row in self.rows:
            obj = row[source]
            if not isinstance(obj, SeedObject):
                raise QueryError(f"column {column!r} does not hold objects")
            for value in dereference(obj, steps):
                rows.append(row + (value,))
        return Relation(self.columns + (into,), tuple(rows))

    # -- inspection --------------------------------------------------------------------

    def column(self, name: str) -> list[Any]:
        """All cells of one column, in row order."""
        index = self._index(name)
        return [row[index] for row in self.rows]

    def distinct_objects(self, column: str) -> list[SeedObject]:
        """Distinct objects of an object column (stable order)."""
        seen: set[int] = set()
        result = []
        for cell in self.column(column):
            if isinstance(cell, SeedObject) and cell.oid not in seen:
                seen.add(cell.oid)
                result.append(cell)
        return result

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for row in self.rows:
            yield dict(zip(self.columns, row))

    # -- internals ------------------------------------------------------------------------

    def _index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise QueryError(
                f"no column {column!r} (columns: {', '.join(self.columns)})"
            ) from None

    @staticmethod
    def _cell_key(cell: Any) -> Any:
        if isinstance(cell, SeedObject):
            return ("oid", cell.oid)
        # type-aware: SEED values are typed, so BOOLEAN false must not
        # collapse with INTEGER 0 (Python's `0 == False`) in set
        # operations or join matching
        return ("val", type(cell).__name__, cell)

    def _require_same_columns(self, other: "Relation") -> None:
        if self.columns != other.columns:
            raise QueryError(
                f"column mismatch: {self.columns} vs {other.columns}"
            )


def extent(
    db: SeedDatabase,
    class_name: str,
    *,
    column: Optional[str] = None,
    include_specials: bool = True,
) -> Relation:
    """One-column relation of a class's live instances."""
    name = column or class_name.lower()
    rows = tuple(
        (obj,)
        for obj in db.iter_objects(class_name, include_specials=include_specials)
    )
    return Relation((name,), rows)


def relationship_relation(
    db: SeedDatabase,
    association: str,
    *,
    include_specials: bool = True,
    with_attributes: Sequence[str] = (),
) -> Relation:
    """Two-column relation of an association's instances.

    Columns carry the association's role names; optional attribute
    columns append attribute values (rows with the attribute unset get
    None — attribute presence is completeness, not existence).
    Only *existing* relationships produce rows, which is exactly why
    undefined items cannot disturb joins (paper, "Manipulating vague and
    incomplete data").
    """
    assoc = db.schema.association(association)
    first_role, second_role = assoc.role_names()
    columns = (first_role, second_role) + tuple(with_attributes)
    rows = tuple(
        relationship_row(rel, with_attributes)
        for rel in db.iter_relationships(
            association, include_specials=include_specials
        )
    )
    return Relation(columns, rows)
