"""The storage engine: database images, write-ahead deltas, recovery.

Four persistence record kinds, composable in one journal file:

* **images** — :func:`save_database` / :func:`load_database` write/read
  one complete database image (a single record holding the canonical
  dict of :mod:`repro.core.storage.serialize`);
* **check-in deltas** — ``{"kind": "checkin", "seq": n, "delta": ...}``
  records appended by :meth:`JournaledDatabase.append_delta` *before*
  the master database applies a multi-user check-in (write-ahead): an
  accepted check-in is durable at O(change) cost, not O(database).
  A delta whose apply failed is neutralized by a matching
  ``{"kind": "checkin.abort", "seq": n}`` marker;
* **transaction deltas** — ``{"kind": "txn", "seq": n, "delta": ...}``
  records appended by the post-commit sink a :class:`JournaledDatabase`
  binds onto its database: every committed *direct* transaction
  (anything outside a check-in apply) is durable at O(change) before
  control returns to the caller. Rollbacks never reach the sink, so
  they append nothing; check-in applies run with the sink suspended
  (the check-in delta already covers them write-ahead);
* **checkpoints** — :class:`JournaledDatabase.checkpoint` appends a
  full image; deltas before the newest image are superseded by it.

Recovery contract (shared by :func:`load_database` and
:meth:`JournaledDatabase.open`, built on the salvage scan of
:class:`~repro.core.storage.recordfile.RecordFile`):

1. The **base** is the newest intact image anywhere in the file —
   corruption can no longer shadow a newer intact checkpoint, because
   the scan resynchronizes past corrupt regions instead of stopping.
2. Deltas *after* the base replay in file order (check-in and txn
   records interleave in their original seq order): check-in deltas
   each in their own transaction, skipping aborted seqs (a delta that
   fails to apply is rolled back — a live abort whose marker was lost
   re-fails deterministically on replay); txn deltas as direct state
   upserts of their committed after-states.
3. Replay stops at the first corrupt region after the base: deltas
   beyond a gap may depend on the lost record, so applying them could
   not be prefix-consistent. They are counted, not applied.
4. The result is always a **prefix-consistent committed state**, and
   any mid-journal corruption, rotted tail, or skipped delta is
   surfaced via :class:`~repro.core.errors.RecoveryWarning` (or raised,
   with ``strict=True``) — never silently ignored. A *torn tail* (the
   clean prefix an interrupted append leaves) stays silent: that is
   ordinary crash recovery, not data loss.

The journal is self-bounding. A ``byte_budget`` (settable directly or
via :attr:`~repro.core.versions.compaction.RetentionPolicy.
journal_byte_budget` through the service maintenance path) makes
:class:`JournaledDatabase` track live-vs-superseded bytes on every
append: bytes before the newest image are superseded (a load never
replays them), everything from it on is the live tail. When total file
size exceeds the budget, the journal auto-compacts — first appending a
fresh checkpoint if the live tail alone exceeds the budget, so the
rewrite actually shrinks the file. The trigger points are post-commit
(after a txn record's effects are already applied in memory) and
explicit maintenance (:meth:`~JournaledDatabase.enforce_budget`) —
never inside :meth:`~JournaledDatabase.append_delta`, where a
checkpoint would supersede a write-ahead record whose apply has not
happened yet. Crash safety of compaction itself rides on the atomic
temp-and-rename of :meth:`~repro.core.storage.recordfile.RecordFile.
rewrite` (exercised via the ``journal.compact.rewrite`` failpoint): a
crash mid-compaction leaves either the old file or the new one, both
of which recover the same committed state.

A full write-ahead log of individual updates would exceed the paper
("SEED does not keep a log of every database update"); the checkpoint
journal with per-check-in and per-transaction deltas matches its
session-oriented saving style while making every committed change
durable. The remaining caveat: bulk state-replacement operations that
bypass the transaction seam (``migrate_schema``, ``restore_from_view``,
``create_version``) are durable only from the next checkpoint on.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.core import faults
from repro.core.database import SeedDatabase
from repro.core.errors import RecoveryWarning, SeedError, StorageError
from repro.core.schema.attached import ProcedureRegistry
from repro.core.storage.recordfile import (
    CorruptRange,
    IntegrityReport,
    RecordFile,
)
from repro.core.storage.serialize import (
    apply_txn_delta,
    database_from_dict,
    database_to_dict,
    txn_delta_from_txn,
)

__all__ = [
    "save_database",
    "load_database",
    "JournaledDatabase",
    "RecoveryInfo",
]


@dataclass
class RecoveryInfo:
    """What a journal load found and did (attached to the loaded db)."""

    report: IntegrityReport
    #: byte offset of the base image record, None when no image survived
    base_offset: Optional[int] = None
    #: check-in deltas replayed successfully after the base image
    applied_deltas: int = 0
    #: direct-transaction deltas replayed successfully after the base
    applied_txn_deltas: int = 0
    #: deltas skipped via abort markers or deterministic re-failure
    aborted_deltas: int = 0
    #: deltas (check-in or txn) after the first post-base corrupt
    #: region (not applied)
    skipped_deltas: int = 0
    #: intact records found *after* a corrupt region (would have been
    #: lost by a stop-at-first-error scan — the pre-salvage-scan bug)
    recovered_records: int = 0

    @property
    def clean(self) -> bool:
        """Nothing to surface: no suspicious corruption, nothing skipped."""
        return not self.report.needs_attention and self.skipped_deltas == 0

    def problems(self) -> list[str]:
        """Human-readable descriptions of everything worth surfacing."""
        found: list[str] = []
        for corrupt in self.report.corrupt_ranges:
            found.append(
                f"skipped corrupt region [{corrupt.offset}:{corrupt.end}] "
                f"({corrupt.problem})"
            )
        if (
            self.report.tail_problem is not None
            and not self.report.tail_is_torn
        ):
            found.append(
                f"corrupt tail at byte {self.report.tail_offset} "
                f"({self.report.tail_problem})"
            )
        if self.recovered_records:
            found.append(
                f"recovered {self.recovered_records} intact record(s) past "
                "the corruption (a stop-at-first-error load would have "
                "served stale state)"
            )
        if self.skipped_deltas:
            found.append(
                f"{self.skipped_deltas} delta(s) after the corruption "
                "were not replayed (prefix consistency); run "
                "`repro fsck --salvage` to quarantine the damage"
            )
        return found


def save_database(db: SeedDatabase, path: str | Path) -> int:
    """Write a complete image of *db* to *path* (atomic replace).

    Returns the image size in bytes.
    """
    record_file = RecordFile(path)
    record_file.rewrite([{"kind": "image", "image": database_to_dict(db)}])
    return record_file.size_bytes()


def load_database(
    path: str | Path,
    registry: Optional[ProcedureRegistry] = None,
    *,
    strict: bool = False,
) -> SeedDatabase:
    """Load the newest committed state from *path*.

    The newest intact image (found by the salvage scan, so corruption
    cannot shadow it) plus every safely replayable check-in delta after
    it. Corruption is surfaced per the module recovery contract:
    :class:`~repro.core.errors.RecoveryWarning` by default, raised as
    :class:`~repro.core.errors.StorageError` with ``strict=True``.
    """
    record_file = RecordFile(path)
    if not record_file.exists():
        raise StorageError(f"no database file at {path}")
    db, info, __ = _load_journal_state(record_file, registry)
    if db is None:
        raise StorageError(f"no intact database image in {path}")
    _surface_recovery(info, path, strict)
    return db


def _load_journal_state(
    record_file: RecordFile, registry: Optional[ProcedureRegistry]
) -> tuple[Optional[SeedDatabase], RecoveryInfo, int]:
    """Shared loader: salvage scan, base image, delta replay.

    Returns ``(db or None, RecoveryInfo, next delta seq)``.
    """
    events = list(record_file.scan())
    report = IntegrityReport(
        path=record_file.path, total_bytes=record_file.size_bytes()
    )
    for event in events:
        if event.kind == "record":
            report.intact_records += 1
        elif event.kind == "corrupt":
            report.corrupt_ranges.append(
                CorruptRange(event.offset, event.end, event.problem)
            )
        else:
            report.tail_problem = event.problem
            report.tail_offset = event.offset
    info = RecoveryInfo(report=report)

    record_events = [event for event in events if event.kind == "record"]
    max_seq = 0
    for event in record_events:
        if isinstance(event.record, dict):
            seq = event.record.get("seq")
            if isinstance(seq, int) and seq > max_seq:
                max_seq = seq
    base = None
    for event in record_events:
        if (
            isinstance(event.record, dict)
            and event.record.get("kind") == "image"
        ):
            base = event
    if base is None:
        return None, info, max_seq + 1
    info.base_offset = base.offset

    first_corrupt = [event for event in events if event.kind == "corrupt"]
    info.recovered_records = sum(
        1
        for event in record_events
        if first_corrupt and event.offset >= first_corrupt[0].end
    )
    # replay window: record events after the base, up to the first
    # corrupt region after the base (prefix consistency past a gap)
    gap_offset = None
    for event in first_corrupt:
        if event.offset > base.offset:
            gap_offset = event.offset
            break
    window = [
        event
        for event in record_events
        if event.offset > base.offset
        and (gap_offset is None or event.end <= gap_offset)
    ]
    info.skipped_deltas = sum(
        1
        for event in record_events
        if gap_offset is not None
        and event.offset >= gap_offset
        and isinstance(event.record, dict)
        and event.record.get("kind") in ("checkin", "txn")
    )

    db = database_from_dict(base.record["image"], registry)
    aborted_seqs = {
        event.record.get("seq")
        for event in window
        if isinstance(event.record, dict)
        and event.record.get("kind") == "checkin.abort"
    }
    # imported lazily: the delta payload is a multi-user check-in
    # package; the storage layer stays import-independent of the
    # multiuser package except on this replay path
    from repro.multiuser.checkin import package_from_dict

    for event in window:
        record = event.record
        if not isinstance(record, dict):
            continue
        kind = record.get("kind")
        if kind == "txn":
            # committed after-states of a direct transaction: validated
            # when they committed, so replay is a plain state upsert
            apply_txn_delta(db, record["delta"])
            info.applied_txn_deltas += 1
            continue
        if kind != "checkin":
            continue
        if record.get("seq") in aborted_seqs:
            info.aborted_deltas += 1
            continue
        package = package_from_dict(record["delta"])
        try:
            with db.transaction():
                package.apply_to(db)
        except SeedError:
            # a live abort whose marker did not survive re-fails
            # deterministically here — same committed state either way
            info.aborted_deltas += 1
        else:
            info.applied_deltas += 1
    return db, info, max_seq + 1


def _surface_recovery(
    info: RecoveryInfo, path: str | Path, strict: bool
) -> None:
    """Warn (or raise) per the recovery contract; silent when clean."""
    if info.clean:
        return
    problems = info.problems()
    message = f"recovered {path} past corruption: " + "; ".join(problems)
    if strict:
        raise StorageError(message)
    warnings.warn(RecoveryWarning(message), stacklevel=3)


class JournaledDatabase:
    """A database bound to a record file of checkpoints and deltas.

    Usage::

        journal = JournaledDatabase.open(path, schema=my_schema)
        db = journal.db
        ...updates...                 # every commit appends a txn delta
        journal.checkpoint()          # appends a recoverable image
        journal.append_delta(pkg)     # durable O(change) check-in record
        journal.compact()             # drops superseded records

    Binding installs a post-commit sink on the database: every
    committed direct transaction appends a write-ahead ``txn`` delta
    before control returns to the caller (rollbacks append nothing).
    With a *byte_budget*, each txn append also enforces the budget —
    see :meth:`enforce_budget`.

    After :meth:`open`, :attr:`recovery` describes what the load found
    (corruption skipped, deltas replayed/aborted/stranded).
    """

    def __init__(
        self,
        db: SeedDatabase,
        record_file: RecordFile,
        *,
        recovery: Optional[RecoveryInfo] = None,
        next_seq: int = 1,
        byte_budget: Optional[int] = None,
    ) -> None:
        self.db = db
        self._file = record_file
        #: what the load found; a fresh journal reports a clean scan
        self.recovery = recovery or RecoveryInfo(
            report=IntegrityReport(path=record_file.path)
        )
        self._next_seq = next_seq
        #: auto-compaction threshold in bytes (None = unbounded)
        self.byte_budget = byte_budget
        # byte accounting: everything before the newest image record is
        # superseded (a load never replays it); the rest is live tail
        self._superseded_bytes = (
            recovery.base_offset if recovery and recovery.base_offset else 0
        )
        # sink suspension depth: >0 while a check-in apply runs (the
        # check-in delta already covers those commits write-ahead)
        self._sink_suspended = 0
        db._commit_sink = self._on_txn_commit  # noqa: SLF001 - the seam

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        schema=None,
        name: str = "db",
        registry: Optional[ProcedureRegistry] = None,
        strict: bool = False,
        byte_budget: Optional[int] = None,
    ) -> "JournaledDatabase":
        """Open an existing journal or start a fresh one.

        When the file holds an intact image, the newest one is loaded,
        every safely replayable delta after it is applied, and *schema*
        is ignored; otherwise *schema* is required and an initial image
        is written. A file that exists but contains no intact record at
        all (e.g. a crash tore the very first checkpoint) counts as
        fresh: recovering to the empty pre-first-commit state is the
        prefix-consistent answer.
        """
        record_file = RecordFile(path)
        if record_file.exists():
            db, info, next_seq = _load_journal_state(record_file, registry)
            if db is not None:
                _surface_recovery(info, path, strict)
                return cls(
                    db,
                    record_file,
                    recovery=info,
                    next_seq=next_seq,
                    byte_budget=byte_budget,
                )
            if info.report.intact_records > 0:
                # intact records but no image: not a journal we can
                # resume, and not safe to clobber with a fresh one
                raise StorageError(f"no intact database image in {path}")
        if schema is None:
            raise StorageError(
                f"no journal at {path} and no schema given to create one"
            )
        db = SeedDatabase(schema, name)
        journal = cls(db, record_file, byte_budget=byte_budget)
        journal.checkpoint()
        return journal

    @property
    def path(self) -> Path:
        """Where the journal lives on disk."""
        return self._file.path

    def checkpoint(self) -> int:
        """Append a recovery image of the current state; returns file size.

        The image supersedes every earlier record on load (deltas
        before it replay into it implicitly).
        """
        offset, __ = self._file.append(
            {"kind": "image", "image": database_to_dict(self.db)}
        )
        self._superseded_bytes = offset
        return self._file.size_bytes()

    def append_delta(self, delta: dict[str, Any]) -> int:
        """Durably append one check-in delta; returns its sequence number.

        Write-ahead: the caller appends *before* applying the check-in
        to the database, so an accepted check-in is durable at
        O(change) cost. If the apply then fails, neutralize the record
        with :meth:`append_abort` — replay skips marked seqs (and a
        marker lost to a crash re-fails deterministically on replay).

        Never auto-compacts: the record is write-ahead of its apply, so
        a checkpoint taken here would supersede a delta whose effects
        are not in the image yet. Budget enforcement belongs *after*
        the apply (see :meth:`enforce_budget`).
        """
        seq = self._next_seq
        self._next_seq += 1
        self._file.append({"kind": "checkin", "seq": seq, "delta": delta})
        return seq

    def append_abort(self, seq: int) -> None:
        """Mark delta *seq* as never-applied (its check-in was rejected)."""
        self._file.append({"kind": "checkin.abort", "seq": seq})

    # -- the post-commit sink ----------------------------------------------

    def _on_txn_commit(self, txn) -> None:
        """Append a write-ahead ``txn`` delta for a committed transaction.

        Installed as the database's post-commit sink. Runs after the
        commit is fully applied in memory, so auto-compaction here is
        safe: a checkpoint taken now already contains the change.
        """
        if self._sink_suspended:
            return
        if faults._PLAN is not None:  # noqa: SLF001 - zero-cost guard
            faults.fire("txn.journal.pre_append")
        seq = self._next_seq
        self._next_seq += 1
        self._file.append(
            {
                "kind": "txn",
                "seq": seq,
                "delta": txn_delta_from_txn(self.db, txn),
            }
        )
        if self.byte_budget is not None:
            self.enforce_budget(self.byte_budget)

    @contextmanager
    def suspended_txn_sink(self) -> Iterator[None]:
        """Suppress txn-delta appends for the duration (reentrant).

        Used around check-in applies: those commits are already covered
        write-ahead by their check-in delta, and double-journaling them
        would double-apply on replay.
        """
        self._sink_suspended += 1
        try:
            yield
        finally:
            self._sink_suspended -= 1

    # -- size bounding ------------------------------------------------------

    def tail_bytes(self) -> int:
        """Bytes a load would actually replay (newest image onward)."""
        return self._file.size_bytes() - self._superseded_bytes

    def enforce_budget(self, budget: Optional[int] = None) -> int:
        """Compact if the journal exceeds *budget* bytes; returns size.

        With no budget (argument and :attr:`byte_budget` both None)
        this is a size probe. Over budget, superseded records are
        dropped via :meth:`compact`; if the live tail alone already
        exceeds the budget, a fresh checkpoint is appended first so the
        deltas behind it become superseded and the rewrite shrinks the
        file to one image. A journal whose single image is larger than
        the budget stays over budget — the budget bounds amplification,
        it cannot make the data smaller than itself.
        """
        if budget is None:
            budget = self.byte_budget
        size = self._file.size_bytes()
        if budget is None or size <= budget:
            return size
        if self.tail_bytes() > budget:
            self.checkpoint()
        return self.compact()

    def compact(self) -> int:
        """Drop superseded records; returns the new file size.

        Keeps the newest intact image plus the deltas after it (minus
        aborted delta/marker pairs). Corrupt regions are implicitly
        dropped by the rewrite; quarantine first via
        :meth:`~repro.core.storage.recordfile.RecordFile.salvage` if
        the bytes matter. When no intact image survives anywhere in the
        file, falls back to checkpointing the live in-memory state and
        compacting to that (surfaced via
        :class:`~repro.core.errors.RecoveryWarning`) — a damaged-but-
        loaded journal can always be bounded.
        """
        records = [
            event.record
            for event in self._file.scan()
            if event.kind == "record"
        ]
        base_index = None
        for index, record in enumerate(records):
            if isinstance(record, dict) and record.get("kind") == "image":
                base_index = index
        if base_index is None:
            dropped = self._file.size_bytes()
            kept = [{"kind": "image", "image": database_to_dict(self.db)}]
            warnings.warn(
                RecoveryWarning(
                    f"journal {self._file.path} holds no intact image; "
                    "compacted to a fresh checkpoint of the live state "
                    f"(dropped damaged bytes [0:{dropped}])"
                ),
                stacklevel=2,
            )
        else:
            tail = records[base_index:]
            aborted = {
                record.get("seq")
                for record in tail
                if isinstance(record, dict)
                and record.get("kind") == "checkin.abort"
            }
            kept = [
                record
                for record in tail
                if not (
                    isinstance(record, dict)
                    and record.get("kind") in ("checkin", "checkin.abort")
                    and record.get("seq") in aborted
                )
            ]
        if faults._PLAN is not None:  # noqa: SLF001 - zero-cost guard
            faults.fire("journal.compact.rewrite")
        self._file.rewrite(kept)
        # the rewrite starts the file at its newest image: nothing is
        # superseded until the next checkpoint
        self._superseded_bytes = 0
        return self._file.size_bytes()

    def checkpoints(self) -> int:
        """Number of intact images in the journal."""
        return sum(
            1
            for event in self._file.scan()
            if event.kind == "record"
            and isinstance(event.record, dict)
            and event.record.get("kind") == "image"
        )

    def deltas(self) -> int:
        """Number of intact check-in delta records in the journal."""
        return sum(
            1
            for event in self._file.scan()
            if event.kind == "record"
            and isinstance(event.record, dict)
            and event.record.get("kind") == "checkin"
        )

    def txn_deltas(self) -> int:
        """Number of intact direct-transaction delta records."""
        return sum(
            1
            for event in self._file.scan()
            if event.kind == "record"
            and isinstance(event.record, dict)
            and event.record.get("kind") == "txn"
        )
