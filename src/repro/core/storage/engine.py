"""The storage engine: database images, write-ahead deltas, recovery.

**Every committed mutation is a journaled delta.** A
:class:`JournaledDatabase` binds the database's change-capture seam
(``SeedDatabase._change_sink``) and appends one write-ahead record per
committed mutation, whatever its shape. The record kinds, composable
in one journal file:

* **images** — ``{"kind": "image", "image": ...}``: one complete
  database image (the canonical dict of
  :mod:`repro.core.storage.serialize`), appended by
  :meth:`JournaledDatabase.checkpoint` and written/read whole by
  :func:`save_database` / :func:`load_database`. A *streamed*
  checkpoint instead appends a counted group —
  ``{"kind": "image.begin", "cp": k}``, one ``{"kind": "image.rec",
  "cp": k, "rec": ...}`` per streamed image record, ``{"kind":
  "image.end", "cp": k, "n": count}`` — emitted straight from
  :func:`~repro.core.storage.serialize.iter_image_records` at O(1)
  extra memory. Only a *complete* group (matching ``cp`` and count)
  counts as an image; a crash mid-stream leaves an incomplete group
  that recovery ignores, exactly like a torn monolithic append;
* **check-in deltas** — ``{"kind": "checkin", "seq": n, "delta": ...}``
  appended by :meth:`JournaledDatabase.append_delta` *before* the
  master applies a multi-user check-in (write-ahead); a failed apply
  is neutralized by ``{"kind": "checkin.abort", "seq": n}``;
* **transaction deltas** — ``{"kind": "txn", "seq": n, "delta": ...}``
  for every committed *direct* transaction (anything outside a
  check-in apply, whose commits the check-in delta already covers);
  rollbacks append nothing;
* **mutation deltas** — the non-transactional mutators journal
  through the same seam: ``{"kind": "schema", ...}`` (a completed
  ``migrate_schema``: the serialized new schema + migration stats),
  ``{"kind": "restore", ...}`` (a completed ``restore_from_view``:
  the restored view delta), ``{"kind": "version", ...}`` (a completed
  ``create_version``: the snapshot's recorded cells). Each appends
  exactly one record before control returns, so these operations are
  durable with **zero** checkpoints.

Recovery contract (shared by :func:`load_database` and
:meth:`JournaledDatabase.open`, built on the salvage scan of
:class:`~repro.core.storage.recordfile.RecordFile`):

1. The **base** is the newest *complete* image anywhere in the file —
   a monolithic image record or a complete streamed group. The scan
   resynchronizes past corrupt regions, so corruption cannot shadow a
   newer intact checkpoint; an incomplete streamed group is never a
   base.
2. Deltas *after* the base replay in file order: check-in deltas each
   in their own transaction, skipping aborted seqs (a live abort whose
   marker was lost re-fails deterministically); txn deltas as direct
   state upserts of their committed after-states; schema, restore, and
   version deltas through their
   :mod:`~repro.core.storage.serialize` appliers, interleaved exactly
   where they committed.
3. Replay stops at the first corrupt region after the base: deltas
   beyond a gap may depend on the lost record, so applying them could
   not be prefix-consistent. They are counted, not applied.
4. A record of an **unknown kind** (a journal written by a newer
   build) is skipped, counted, and surfaced — degrade gracefully, but
   never silently.
5. The result is always a **prefix-consistent committed state**, and
   any mid-journal corruption, rotted tail, skipped delta, or unknown
   record is surfaced via :class:`~repro.core.errors.RecoveryWarning`
   (or raised, with ``strict=True``). A *torn tail* (the clean prefix
   an interrupted append leaves) stays silent: that is ordinary crash
   recovery, not data loss.

**Group commit.** By default every committed transaction is its own
fsync'd append — the strict PR 9 contract. Opting in to a
:class:`GroupCommitPolicy` batches encoded txn records in memory and
appends each batch with one fsync, bounding the durability window by
``max_txns`` / ``max_bytes`` / ``max_delay_s`` (checked at each
commit against an injectable monotonic clock). Every consistency
point is a **hard flush barrier**: check-in appends, checkpoints,
compaction, budget enforcement, snapshot pins, and service shutdown
drain the buffer first, so a crash can only lose the last
partial batch of *direct* commits — never a check-in, never anything
after a barrier. The strict default is opt-out, not weakened.

The journal is self-bounding. A ``byte_budget`` (settable directly or
via :attr:`~repro.core.versions.compaction.RetentionPolicy.
journal_byte_budget` through the service maintenance path) makes
:class:`JournaledDatabase` track live-vs-superseded bytes on every
append: bytes before the newest image are superseded (a load never
replays them), everything from it on is the live tail. When total file
size exceeds the budget, the journal auto-compacts — first appending a
fresh checkpoint if the live tail alone exceeds the budget, so the
rewrite actually shrinks the file. The trigger points are post-commit
(after a record's effects are already applied in memory) and explicit
maintenance (:meth:`~JournaledDatabase.enforce_budget`) — never inside
:meth:`~JournaledDatabase.append_delta`, where a checkpoint would
supersede a write-ahead record whose apply has not happened yet.
Crash safety of compaction itself rides on the atomic temp-and-rename
of :meth:`~repro.core.storage.recordfile.RecordFile.rewrite`
(exercised via the ``journal.compact.rewrite`` failpoint): a crash
mid-compaction leaves either the old file or the new one, both of
which recover the same committed state.

A full write-ahead log of individual updates would exceed the paper
("SEED does not keep a log of every database update"); the checkpoint
journal with per-mutation deltas matches its session-oriented saving
style while making every committed change durable at O(change).
"""

from __future__ import annotations

import json
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Optional

from repro.core import faults
from repro.core.database import SeedDatabase
from repro.core.errors import RecoveryWarning, SeedError, StorageError
from repro.core.schema.attached import ProcedureRegistry
from repro.core.storage.recordfile import (
    CorruptRange,
    IntegrityReport,
    RecordFile,
)
from repro.core.storage.serialize import (
    apply_restore_delta,
    apply_schema_delta,
    apply_txn_delta,
    apply_version_delta,
    database_from_dict,
    database_from_records,
    database_to_dict,
    iter_image_records,
    restore_delta_from_db,
    schema_delta_from_migration,
    txn_delta_from_txn,
    version_delta_from_db,
)

__all__ = [
    "save_database",
    "load_database",
    "GroupCommitPolicy",
    "JournaledDatabase",
    "RecoveryInfo",
    "KNOWN_RECORD_KINDS",
]

#: record kinds the replay window treats as deltas (anything of these
#: kinds stranded past a corrupt gap counts as skipped)
_DELTA_KINDS = ("checkin", "txn", "schema", "restore", "version")
#: every record kind this build understands; anything else in the
#: replay window is an unknown-future-kind record (skip + surface)
KNOWN_RECORD_KINDS = frozenset(
    {
        "image",
        "image.begin",
        "image.rec",
        "image.end",
        "checkin",
        "checkin.abort",
        "txn",
        "schema",
        "restore",
        "version",
    }
)


@dataclass(frozen=True)
class GroupCommitPolicy:
    """Bounds for batching direct-transaction journal appends.

    With a policy installed, committed ``txn`` records are buffered in
    memory and appended with **one fsync per batch** instead of one per
    commit. A buffered commit is applied in memory but not yet durable:
    the policy bounds that window — a batch flushes when it reaches
    ``max_txns`` records, ``max_bytes`` of encoded payload, or when
    ``max_delay_s`` has elapsed since the first buffered commit
    (checked at each commit against the journal's monotonic clock; no
    background timer thread — an idle journal flushes at the next
    commit or barrier). Check-in appends, checkpoints, compaction,
    budget enforcement, and explicit :meth:`JournaledDatabase.flush`
    are hard barriers that drain the buffer first, so only the last
    partial batch of direct commits can ever be lost to a crash.
    """

    #: flush after this many buffered commits
    max_txns: int = 8
    #: flush once the encoded batch reaches this many bytes
    max_bytes: int = 64 * 1024
    #: flush once the oldest buffered commit is this old (seconds)
    max_delay_s: float = 0.05


def _image_units(record_events: list) -> list[dict]:
    """Find every complete image unit among *record_events*.

    A unit is either a monolithic ``image`` record or a complete
    streamed checkpoint group (``image.begin`` .. ``image.end`` with a
    matching ``cp`` id and part count). Returns dicts with ``start`` /
    ``end`` byte offsets, ``start_index`` into *record_events*, and
    either ``image`` (monolithic payload) or ``parts`` (the streamed
    image records). Incomplete groups — a crash mid-stream, or
    corruption that ate a part or endpoint — yield no unit, exactly
    like a torn monolithic append.
    """
    units: list[dict] = []
    pending: dict[Any, dict] = {}
    for index, event in enumerate(record_events):
        record = event.record
        if not isinstance(record, dict):
            continue
        kind = record.get("kind")
        if kind == "image":
            units.append(
                {
                    "start": event.offset,
                    "end": event.end,
                    "start_index": index,
                    "image": record.get("image"),
                    "cp": None,
                }
            )
        elif kind == "image.begin":
            pending[record.get("cp")] = {
                "start": event.offset,
                "start_index": index,
                "parts": [],
            }
        elif kind == "image.rec":
            group = pending.get(record.get("cp"))
            if group is not None:
                group["parts"].append(record.get("rec"))
        elif kind == "image.end":
            group = pending.pop(record.get("cp"), None)
            if group is not None and record.get("n") == len(group["parts"]):
                units.append(
                    {
                        "start": group["start"],
                        "end": event.end,
                        "start_index": group["start_index"],
                        "parts": group["parts"],
                        "cp": record.get("cp"),
                    }
                )
    return units


@dataclass
class RecoveryInfo:
    """What a journal load found and did (attached to the loaded db)."""

    report: IntegrityReport
    #: byte offset of the base image record, None when no image survived
    base_offset: Optional[int] = None
    #: check-in deltas replayed successfully after the base image
    applied_deltas: int = 0
    #: direct-transaction deltas replayed successfully after the base
    applied_txn_deltas: int = 0
    #: schema/restore/version mutation deltas replayed after the base
    applied_change_deltas: int = 0
    #: deltas skipped via abort markers or deterministic re-failure
    aborted_deltas: int = 0
    #: deltas (any kind in ``_DELTA_KINDS``) after the first post-base
    #: corrupt region (not applied)
    skipped_deltas: int = 0
    #: intact records found *after* a corrupt region (would have been
    #: lost by a stop-at-first-error scan — the pre-salvage-scan bug)
    recovered_records: int = 0
    #: intact records in the replay window whose kind this build does
    #: not understand (journal written by a newer build): skipped, not
    #: applied, surfaced
    unknown_records: int = 0
    #: the distinct unknown kinds encountered (stringified)
    unknown_kinds: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Nothing to surface: no suspicious corruption, nothing skipped."""
        return (
            not self.report.needs_attention
            and self.skipped_deltas == 0
            and self.unknown_records == 0
        )

    def problems(self) -> list[str]:
        """Human-readable descriptions of everything worth surfacing."""
        found: list[str] = []
        for corrupt in self.report.corrupt_ranges:
            found.append(
                f"skipped corrupt region [{corrupt.offset}:{corrupt.end}] "
                f"({corrupt.problem})"
            )
        if (
            self.report.tail_problem is not None
            and not self.report.tail_is_torn
        ):
            found.append(
                f"corrupt tail at byte {self.report.tail_offset} "
                f"({self.report.tail_problem})"
            )
        if self.recovered_records:
            found.append(
                f"recovered {self.recovered_records} intact record(s) past "
                "the corruption (a stop-at-first-error load would have "
                "served stale state)"
            )
        if self.skipped_deltas:
            found.append(
                f"{self.skipped_deltas} delta(s) after the corruption "
                "were not replayed (prefix consistency); run "
                "`repro fsck --salvage` to quarantine the damage"
            )
        if self.unknown_records:
            kinds = ", ".join(sorted(set(self.unknown_kinds)))
            found.append(
                f"{self.unknown_records} record(s) of unknown kind(s) "
                f"[{kinds}] were skipped (journal written by a newer "
                "build?)"
            )
        return found


def save_database(db: SeedDatabase, path: str | Path) -> int:
    """Write a complete image of *db* to *path* (atomic replace).

    Returns the image size in bytes.
    """
    record_file = RecordFile(path)
    record_file.rewrite([{"kind": "image", "image": database_to_dict(db)}])
    return record_file.size_bytes()


def load_database(
    path: str | Path,
    registry: Optional[ProcedureRegistry] = None,
    *,
    strict: bool = False,
) -> SeedDatabase:
    """Load the newest committed state from *path*.

    The newest intact image (found by the salvage scan, so corruption
    cannot shadow it) plus every safely replayable check-in delta after
    it. Corruption is surfaced per the module recovery contract:
    :class:`~repro.core.errors.RecoveryWarning` by default, raised as
    :class:`~repro.core.errors.StorageError` with ``strict=True``.
    """
    record_file = RecordFile(path)
    if not record_file.exists():
        raise StorageError(f"no database file at {path}")
    db, info, __ = _load_journal_state(record_file, registry)
    if db is None:
        raise StorageError(f"no intact database image in {path}")
    _surface_recovery(info, path, strict)
    return db


def _load_journal_state(
    record_file: RecordFile, registry: Optional[ProcedureRegistry]
) -> tuple[Optional[SeedDatabase], RecoveryInfo, int]:
    """Shared loader: salvage scan, base image, delta replay.

    Returns ``(db or None, RecoveryInfo, next delta seq)``.
    """
    events = list(record_file.scan())
    report = IntegrityReport(
        path=record_file.path, total_bytes=record_file.size_bytes()
    )
    for event in events:
        if event.kind == "record":
            report.intact_records += 1
        elif event.kind == "corrupt":
            report.corrupt_ranges.append(
                CorruptRange(event.offset, event.end, event.problem)
            )
        else:
            report.tail_problem = event.problem
            report.tail_offset = event.offset
    info = RecoveryInfo(report=report)

    record_events = [event for event in events if event.kind == "record"]
    max_seq = 0
    for event in record_events:
        if isinstance(event.record, dict):
            # streamed checkpoints draw their ``cp`` id from the same
            # counter, so it participates in the high-water mark too
            for key in ("seq", "cp"):
                value = event.record.get(key)
                if isinstance(value, int) and value > max_seq:
                    max_seq = value
    units = _image_units(record_events)
    if not units:
        return None, info, max_seq + 1
    base = units[-1]
    info.base_offset = base["start"]

    first_corrupt = [event for event in events if event.kind == "corrupt"]
    info.recovered_records = sum(
        1
        for event in record_events
        if first_corrupt and event.offset >= first_corrupt[0].end
    )
    # replay window: record events after the base unit, up to the first
    # corrupt region after the base (prefix consistency past a gap).
    # Corruption *inside* a streamed base group cannot happen — a group
    # missing any part is incomplete and never becomes the base.
    gap_offset = None
    for event in first_corrupt:
        if event.offset > base["start"]:
            gap_offset = event.offset
            break
    window = [
        event
        for event in record_events
        if event.offset >= base["end"]
        and (gap_offset is None or event.end <= gap_offset)
    ]
    info.skipped_deltas = sum(
        1
        for event in record_events
        if gap_offset is not None
        and event.offset >= gap_offset
        and isinstance(event.record, dict)
        and event.record.get("kind") in _DELTA_KINDS
    )

    if base["cp"] is None:
        db = database_from_dict(base["image"], registry)
    else:
        db = database_from_records(base["parts"], registry)
    aborted_seqs = {
        event.record.get("seq")
        for event in window
        if isinstance(event.record, dict)
        and event.record.get("kind") == "checkin.abort"
    }
    # imported lazily: the delta payload is a multi-user check-in
    # package; the storage layer stays import-independent of the
    # multiuser package except on this replay path
    from repro.multiuser.checkin import package_from_dict

    for event in window:
        record = event.record
        if not isinstance(record, dict):
            info.unknown_records += 1
            info.unknown_kinds.append("<not a record object>")
            continue
        kind = record.get("kind")
        if kind == "txn":
            # committed after-states of a direct transaction: validated
            # when they committed, so replay is a plain state upsert
            apply_txn_delta(db, record["delta"])
            info.applied_txn_deltas += 1
            continue
        if kind == "schema":
            apply_schema_delta(db, record["delta"], registry)
            info.applied_change_deltas += 1
            continue
        if kind == "restore":
            apply_restore_delta(db, record["delta"])
            info.applied_change_deltas += 1
            continue
        if kind == "version":
            apply_version_delta(db, record["delta"])
            info.applied_change_deltas += 1
            continue
        if kind != "checkin":
            if kind not in KNOWN_RECORD_KINDS:
                # a future build's record: skipping it keeps the load
                # prefix-consistent *as this build understands state*;
                # surface it so nobody mistakes the result for complete
                info.unknown_records += 1
                info.unknown_kinds.append(str(kind))
            # image-family records in the window belong to an
            # incomplete streamed checkpoint (crash mid-stream): state
            # no-ops, skipped silently like a torn tail
            continue
        if record.get("seq") in aborted_seqs:
            info.aborted_deltas += 1
            continue
        package = package_from_dict(record["delta"])
        try:
            with db.transaction():
                package.apply_to(db)
        except SeedError:
            # a live abort whose marker did not survive re-fails
            # deterministically here — same committed state either way
            info.aborted_deltas += 1
        else:
            info.applied_deltas += 1
    return db, info, max_seq + 1


def _surface_recovery(
    info: RecoveryInfo, path: str | Path, strict: bool
) -> None:
    """Warn (or raise) per the recovery contract; silent when clean."""
    if info.clean:
        return
    problems = info.problems()
    message = f"recovered {path} past corruption: " + "; ".join(problems)
    if strict:
        raise StorageError(message)
    warnings.warn(RecoveryWarning(message), stacklevel=3)


class JournaledDatabase:
    """A database bound to a record file of checkpoints and deltas.

    Usage::

        journal = JournaledDatabase.open(path, schema=my_schema)
        db = journal.db
        ...updates...                 # every commit appends a txn delta
        db.migrate_schema(new)        # appends one ``schema`` delta
        db.create_version("v")        # appends one ``version`` delta
        journal.checkpoint()          # appends a recoverable image
        journal.append_delta(pkg)     # durable O(change) check-in record
        journal.compact()             # drops superseded records

    Binding installs the database's change sink: every committed
    mutation — direct transaction, schema migration, version restore,
    version creation — appends a write-ahead delta before control
    returns to the caller (rollbacks append nothing). With a
    *byte_budget*, each post-commit append also enforces the budget —
    see :meth:`enforce_budget`.

    With a :class:`GroupCommitPolicy`, direct-transaction deltas are
    buffered and appended with one fsync per batch; everything else
    (check-ins, mutation deltas, checkpoints, compaction) is a hard
    flush barrier. The default (``group_commit=None``) keeps strict
    per-commit durability.

    After :meth:`open`, :attr:`recovery` describes what the load found
    (corruption skipped, deltas replayed/aborted/stranded).
    """

    def __init__(
        self,
        db: SeedDatabase,
        record_file: RecordFile,
        *,
        recovery: Optional[RecoveryInfo] = None,
        next_seq: int = 1,
        byte_budget: Optional[int] = None,
        group_commit: Optional[GroupCommitPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        streamed_checkpoints: bool = False,
    ) -> None:
        self.db = db
        self._file = record_file
        #: what the load found; a fresh journal reports a clean scan
        self.recovery = recovery or RecoveryInfo(
            report=IntegrityReport(path=record_file.path)
        )
        self._next_seq = next_seq
        #: auto-compaction threshold in bytes (None = unbounded)
        self.byte_budget = byte_budget
        #: txn batching policy (None = strict per-commit fsync)
        self.group_commit = group_commit
        #: default checkpoint mode (overridable per call)
        self.streamed_checkpoints = streamed_checkpoints
        #: batches durably appended so far (one fsync each)
        self.group_flushes = 0
        self._clock = clock if clock is not None else time.monotonic
        self._pending: list[dict] = []
        self._pending_bytes = 0
        self._pending_since: Optional[float] = None
        # byte accounting: everything before the newest image record is
        # superseded (a load never replays it); the rest is live tail
        self._superseded_bytes = (
            recovery.base_offset if recovery and recovery.base_offset else 0
        )
        # sink suspension depth: >0 while a check-in apply runs (the
        # check-in delta already covers those commits write-ahead)
        self._sink_suspended = 0
        db._change_sink = self._on_change_event  # noqa: SLF001 - the seam

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        schema=None,
        name: str = "db",
        registry: Optional[ProcedureRegistry] = None,
        strict: bool = False,
        byte_budget: Optional[int] = None,
        group_commit: Optional[GroupCommitPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        streamed_checkpoints: bool = False,
    ) -> "JournaledDatabase":
        """Open an existing journal or start a fresh one.

        When the file holds an intact image, the newest one is loaded,
        every safely replayable delta after it is applied, and *schema*
        is ignored; otherwise *schema* is required and an initial image
        is written. A file that exists but contains no intact record at
        all (e.g. a crash tore the very first checkpoint) counts as
        fresh: recovering to the empty pre-first-commit state is the
        prefix-consistent answer.
        """
        record_file = RecordFile(path)
        if record_file.exists():
            db, info, next_seq = _load_journal_state(record_file, registry)
            if db is not None:
                _surface_recovery(info, path, strict)
                return cls(
                    db,
                    record_file,
                    recovery=info,
                    next_seq=next_seq,
                    byte_budget=byte_budget,
                    group_commit=group_commit,
                    clock=clock,
                    streamed_checkpoints=streamed_checkpoints,
                )
            if info.report.intact_records > 0:
                # intact records but no image: not a journal we can
                # resume, and not safe to clobber with a fresh one
                raise StorageError(f"no intact database image in {path}")
        if schema is None:
            raise StorageError(
                f"no journal at {path} and no schema given to create one"
            )
        db = SeedDatabase(schema, name)
        journal = cls(
            db,
            record_file,
            byte_budget=byte_budget,
            group_commit=group_commit,
            clock=clock,
            streamed_checkpoints=streamed_checkpoints,
        )
        journal.checkpoint()
        return journal

    @property
    def path(self) -> Path:
        """Where the journal lives on disk."""
        return self._file.path

    def checkpoint(self, *, streamed: Optional[bool] = None) -> int:
        """Append a recovery image of the current state; returns file size.

        The image supersedes every earlier record on load (deltas
        before it replay into it implicitly). Flush barrier: any
        buffered group-commit records are appended first.

        With ``streamed=True`` (or :attr:`streamed_checkpoints`), the
        image is appended as a counted ``image.begin`` / ``image.rec``
        / ``image.end`` group emitted straight from
        :func:`~repro.core.storage.serialize.iter_image_records`, so
        checkpointing never materializes the monolithic image dict —
        O(1) extra memory in the database size. Recovery treats only a
        complete group as an image; a crash mid-stream is a torn
        checkpoint and the previous base still recovers the same
        committed state (checkpoints change no state).
        """
        self.flush(enforce=False)
        if streamed is None:
            streamed = self.streamed_checkpoints
        if not streamed:
            offset, __ = self._file.append(
                {"kind": "image", "image": database_to_dict(self.db)}
            )
            self._superseded_bytes = offset
            return self._file.size_bytes()
        cp = self._next_seq
        self._next_seq += 1
        offset = self._file.size_bytes()

        def group() -> Iterator[dict]:
            yield {"kind": "image.begin", "cp": cp}
            count = 0
            for rec in iter_image_records(self.db):
                count += 1
                yield {"kind": "image.rec", "cp": cp, "rec": rec}
            yield {"kind": "image.end", "cp": cp, "n": count}

        self._file.append_stream(group())
        self._superseded_bytes = offset
        return self._file.size_bytes()

    def append_delta(self, delta: dict[str, Any]) -> int:
        """Durably append one check-in delta; returns its sequence number.

        Write-ahead: the caller appends *before* applying the check-in
        to the database, so an accepted check-in is durable at
        O(change) cost. If the apply then fails, neutralize the record
        with :meth:`append_abort` — replay skips marked seqs (and a
        marker lost to a crash re-fails deterministically on replay).

        Hard flush barrier: buffered group-commit records land in the
        same fsync'd batch, ahead of the check-in record, preserving
        file order.

        Never auto-compacts: the record is write-ahead of its apply, so
        a checkpoint taken here would supersede a delta whose effects
        are not in the image yet. Budget enforcement belongs *after*
        the apply (see :meth:`enforce_budget`).
        """
        seq = self._next_seq
        self._next_seq += 1
        self._append_record({"kind": "checkin", "seq": seq, "delta": delta})
        return seq

    def append_abort(self, seq: int) -> None:
        """Mark delta *seq* as never-applied (its check-in was rejected)."""
        self._append_record({"kind": "checkin.abort", "seq": seq})

    # -- the change sink ----------------------------------------------------

    def _on_change_event(self, kind: str, payload: Any) -> None:
        """The database's change sink: journal one committed mutation.

        Installed as ``db._change_sink``. Runs after the mutation is
        fully applied in memory, so auto-compaction here is safe: a
        checkpoint taken now already contains the change. Direct
        transactions (``"txn"``) may buffer under a group-commit
        policy; every other kind appends exactly one write-ahead record
        — draining any buffered txns in the same fsync'd batch — before
        returning.
        """
        if self._sink_suspended:
            return
        if kind == "txn":
            self._on_txn_commit(payload)
            return
        if kind == "schema":
            new_schema, index = payload
            delta = schema_delta_from_migration(self.db, new_schema, index)
        elif kind == "restore":
            delta = restore_delta_from_db(self.db, payload)
        elif kind == "version":
            delta = version_delta_from_db(self.db, payload)
        else:
            raise StorageError(
                f"change sink received unknown event kind {kind!r}: "
                "refusing to drop a committed mutation silently"
            )
        if faults._PLAN is not None:  # noqa: SLF001 - zero-cost guard
            faults.fire("change.journal.pre_append")
        seq = self._next_seq
        self._next_seq += 1
        self._append_record({"kind": kind, "seq": seq, "delta": delta})
        if self.byte_budget is not None:
            self.enforce_budget(self.byte_budget)

    def _on_txn_commit(self, txn) -> None:
        """Append (or buffer) a ``txn`` delta for a committed transaction."""
        if faults._PLAN is not None:  # noqa: SLF001 - zero-cost guard
            faults.fire("txn.journal.pre_append")
        seq = self._next_seq
        self._next_seq += 1
        record = {
            "kind": "txn",
            "seq": seq,
            "delta": txn_delta_from_txn(self.db, txn),
        }
        policy = self.group_commit
        if policy is None:
            self._file.append(record)
            if self.byte_budget is not None:
                self.enforce_budget(self.byte_budget)
            return
        encoded = json.dumps(record, separators=(",", ":"), sort_keys=True)
        now = self._clock()
        self._pending.append(record)
        self._pending_bytes += len(encoded)
        if self._pending_since is None:
            self._pending_since = now
        if (
            len(self._pending) >= policy.max_txns
            or self._pending_bytes >= policy.max_bytes
            or now - self._pending_since >= policy.max_delay_s
        ):
            self.flush()

    # -- group commit --------------------------------------------------------

    def pending_txns(self) -> int:
        """Buffered (applied-in-memory, not yet durable) txn records."""
        return len(self._pending)

    def flush(self, *, enforce: bool = True) -> int:
        """Durably append every buffered txn record with one fsync.

        Returns the number of records flushed (0 when the buffer is
        empty — a no-op without touching the file). The buffer is
        cleared only after the append succeeds, so a transient I/O
        failure leaves the records buffered for the next barrier.
        """
        if not self._pending:
            return 0
        count = self._file.append_many(self._pending)
        self._pending = []
        self._pending_bytes = 0
        self._pending_since = None
        self.group_flushes += 1
        if enforce and self.byte_budget is not None:
            self.enforce_budget(self.byte_budget)
        return count

    def _append_record(self, record: dict) -> None:
        """Append one record, draining any buffered txns ahead of it.

        The buffered records and *record* land in a single
        :meth:`~repro.core.storage.recordfile.RecordFile.append_many`
        call — one open, one fsync — preserving commit order in the
        file. With an empty buffer this is a plain append.
        """
        if self._pending:
            batch = self._pending + [record]
            self._file.append_many(batch)
            self._pending = []
            self._pending_bytes = 0
            self._pending_since = None
            self.group_flushes += 1
        else:
            self._file.append(record)

    @contextmanager
    def suspended_txn_sink(self) -> Iterator[None]:
        """Suppress txn-delta appends for the duration (reentrant).

        Used around check-in applies: those commits are already covered
        write-ahead by their check-in delta, and double-journaling them
        would double-apply on replay.
        """
        self._sink_suspended += 1
        try:
            yield
        finally:
            self._sink_suspended -= 1

    # -- size bounding ------------------------------------------------------

    def tail_bytes(self) -> int:
        """Bytes a load would actually replay (newest image onward)."""
        return self._file.size_bytes() - self._superseded_bytes

    def enforce_budget(self, budget: Optional[int] = None) -> int:
        """Compact if the journal exceeds *budget* bytes; returns size.

        With no budget (argument and :attr:`byte_budget` both None)
        this is a size probe. Over budget, superseded records are
        dropped via :meth:`compact`; if the live tail alone already
        exceeds the budget, a fresh checkpoint is appended first so the
        deltas behind it become superseded and the rewrite shrinks the
        file to one image. A journal whose single image is larger than
        the budget stays over budget — the budget bounds amplification,
        it cannot make the data smaller than itself.
        """
        self.flush(enforce=False)
        if budget is None:
            budget = self.byte_budget
        size = self._file.size_bytes()
        if budget is None or size <= budget:
            return size
        if self.tail_bytes() > budget:
            self.checkpoint()
        return self.compact()

    def compact(self) -> int:
        """Drop superseded records; returns the new file size.

        Flush barrier: buffered group-commit records are appended
        before the scan, so none can be dropped by the rewrite. Keeps
        the newest complete image unit (monolithic record or streamed
        group) plus the deltas after it, minus aborted delta/marker
        pairs and minus any incomplete streamed-checkpoint leftovers.
        Corrupt regions are implicitly dropped by the rewrite;
        quarantine first via
        :meth:`~repro.core.storage.recordfile.RecordFile.salvage` if
        the bytes matter. When no complete image survives anywhere in
        the file, falls back to checkpointing the live in-memory state
        and compacting to that (surfaced via
        :class:`~repro.core.errors.RecoveryWarning`) — a damaged-but-
        loaded journal can always be bounded.
        """
        self.flush(enforce=False)
        record_events = [
            event for event in self._file.scan() if event.kind == "record"
        ]
        units = _image_units(record_events)
        if not units:
            dropped = self._file.size_bytes()
            kept = [{"kind": "image", "image": database_to_dict(self.db)}]
            warnings.warn(
                RecoveryWarning(
                    f"journal {self._file.path} holds no intact image; "
                    "compacted to a fresh checkpoint of the live state "
                    f"(dropped damaged bytes [0:{dropped}])"
                ),
                stacklevel=2,
            )
        else:
            base = units[-1]
            tail = [
                event.record
                for event in record_events[base["start_index"]:]
            ]
            aborted = {
                record.get("seq")
                for record in tail
                if isinstance(record, dict)
                and record.get("kind") == "checkin.abort"
            }
            # image-family records in the tail that are not part of the
            # (complete) base unit belong to an interrupted streamed
            # checkpoint: state no-ops a load ignores — drop the junk
            base_cp = base["cp"]

            def keeps(record: Any) -> bool:
                if not isinstance(record, dict):
                    return True
                kind = record.get("kind")
                if (
                    kind in ("checkin", "checkin.abort")
                    and record.get("seq") in aborted
                ):
                    return False
                if kind in ("image.begin", "image.rec", "image.end"):
                    return base_cp is not None and record.get("cp") == base_cp
                return True

            kept = [record for record in tail if keeps(record)]
        if faults._PLAN is not None:  # noqa: SLF001 - zero-cost guard
            faults.fire("journal.compact.rewrite")
        self._file.rewrite(kept)
        # the rewrite starts the file at its newest image: nothing is
        # superseded until the next checkpoint
        self._superseded_bytes = 0
        return self._file.size_bytes()

    def checkpoints(self) -> int:
        """Number of complete images (monolithic or streamed groups)."""
        record_events = [
            event for event in self._file.scan() if event.kind == "record"
        ]
        return len(_image_units(record_events))

    def deltas(self) -> int:
        """Number of intact check-in delta records in the journal."""
        return sum(
            1
            for event in self._file.scan()
            if event.kind == "record"
            and isinstance(event.record, dict)
            and event.record.get("kind") == "checkin"
        )

    def txn_deltas(self) -> int:
        """Number of intact direct-transaction delta records."""
        return sum(
            1
            for event in self._file.scan()
            if event.kind == "record"
            and isinstance(event.record, dict)
            and event.record.get("kind") == "txn"
        )
