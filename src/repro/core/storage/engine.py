"""The storage engine: database images and an update journal.

Two persistence modes, composable:

* **images** — :func:`save_database` / :func:`load_database` write/read
  one complete database image (a single record holding the canonical
  dict of :mod:`repro.core.storage.serialize`);
* **journal** — :class:`JournaledDatabase` wraps a database and appends
  an image record on every :meth:`~JournaledDatabase.checkpoint`; the
  newest intact image wins on load, so a crash during checkpointing
  falls back to the previous one.

A full write-ahead log of individual updates would exceed the paper
("SEED does not keep a log of every database update"); the checkpoint
journal matches its session-oriented saving style.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.database import SeedDatabase
from repro.core.errors import StorageError
from repro.core.schema.attached import ProcedureRegistry
from repro.core.storage.recordfile import RecordFile
from repro.core.storage.serialize import database_from_dict, database_to_dict

__all__ = ["save_database", "load_database", "JournaledDatabase"]


def save_database(db: SeedDatabase, path: str | Path) -> int:
    """Write a complete image of *db* to *path* (atomic replace).

    Returns the image size in bytes.
    """
    record_file = RecordFile(path)
    record_file.rewrite([{"kind": "image", "image": database_to_dict(db)}])
    return record_file.size_bytes()


def load_database(
    path: str | Path, registry: Optional[ProcedureRegistry] = None
) -> SeedDatabase:
    """Load the newest intact image from *path*."""
    record_file = RecordFile(path)
    if not record_file.exists():
        raise StorageError(f"no database file at {path}")
    image = None
    for record in record_file.records():
        if record.get("kind") == "image":
            image = record["image"]
    if image is None:
        raise StorageError(f"no intact database image in {path}")
    return database_from_dict(image, registry)


class JournaledDatabase:
    """A database bound to a record file of checkpoint images.

    Usage::

        journal = JournaledDatabase.open(path, schema=my_schema)
        db = journal.db
        ...updates...
        journal.checkpoint()          # appends a recoverable image
        journal.compact()             # drops superseded images
    """

    def __init__(self, db: SeedDatabase, record_file: RecordFile) -> None:
        self.db = db
        self._file = record_file

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        schema=None,
        name: str = "db",
        registry: Optional[ProcedureRegistry] = None,
    ) -> "JournaledDatabase":
        """Open an existing journal or start a fresh one.

        When the file exists, the newest intact image is loaded and
        *schema* is ignored; otherwise *schema* is required and an
        initial image is written.
        """
        record_file = RecordFile(path)
        if record_file.exists() and record_file.count() > 0:
            db = load_database(path, registry)
            return cls(db, record_file)
        if schema is None:
            raise StorageError(
                f"no journal at {path} and no schema given to create one"
            )
        db = SeedDatabase(schema, name)
        journal = cls(db, record_file)
        journal.checkpoint()
        return journal

    def checkpoint(self) -> int:
        """Append a recovery image of the current state; returns file size."""
        self._file.append({"kind": "image", "image": database_to_dict(self.db)})
        return self._file.size_bytes()

    def compact(self) -> int:
        """Keep only the newest image; returns the new file size."""
        newest = None
        for record in self._file.records():
            if record.get("kind") == "image":
                newest = record
        if newest is None:
            raise StorageError("journal holds no intact image to compact to")
        self._file.rewrite([newest])
        return self._file.size_bytes()

    def checkpoints(self) -> int:
        """Number of intact images in the journal."""
        return sum(
            1 for record in self._file.records() if record.get("kind") == "image"
        )
