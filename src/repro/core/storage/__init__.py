"""Persistence: canonical serialisation, record files, storage engine."""

from repro.core.storage.engine import (
    GroupCommitPolicy,
    JournaledDatabase,
    RecoveryInfo,
    load_database,
    save_database,
)
from repro.core.storage.recordfile import (
    CorruptRange,
    IntegrityReport,
    RecordFile,
)
from repro.core.storage.serialize import (
    database_from_dict,
    database_from_records,
    database_to_dict,
    ingest_image_records,
    iter_image_records,
    schema_from_dict,
    schema_to_dict,
)

__all__ = [
    "GroupCommitPolicy",
    "JournaledDatabase",
    "RecoveryInfo",
    "load_database",
    "save_database",
    "RecordFile",
    "CorruptRange",
    "IntegrityReport",
    "database_from_dict",
    "database_from_records",
    "database_to_dict",
    "ingest_image_records",
    "iter_image_records",
    "schema_from_dict",
    "schema_to_dict",
]
