"""An append-only, checksummed record file with salvage recovery.

The SEED prototype persisted its database; this module provides the
storage primitive our engine uses: a log of length-prefixed,
CRC-protected JSON records. Appends are atomic at the record level — a
torn final record (crash mid-write) is detected by checksum/length
mismatch and ignored by the recovery scan, so the file never poisons a
load.

Format, per record::

    8 bytes  payload length (decimal, zero-padded ASCII)
    1 byte   space
    8 bytes  CRC32 of payload (hex, zero-padded ASCII)
    1 byte   newline
    N bytes  payload (UTF-8 JSON)
    1 byte   newline

The ASCII framing keeps files inspectable with standard tools while
remaining strict enough for reliable recovery.

Recovery contract
-----------------

* **Detection** — every single-byte corruption is detected: payload
  bytes by the CRC (CRC32 catches all error bursts <= 32 bits), header
  bytes by the digit/hex/framing checks, and truncation by the length
  prefix. :meth:`RecordFile.records` streams the file and stops at the
  first problem (raising with ``strict=True``).
* **Resynchronization** — :meth:`RecordFile.scan` does not stop: after
  a corrupt region it searches forward for the next *plausible header*
  (17 digit/space/hex bytes followed by a newline whose framed payload
  passes the CRC, terminator, and JSON checks) and resumes there.
  Payloads are single-line JSON, so an intact record can never contain
  a raw newline — the next real header is always found, and a false
  resync would additionally need a 1-in-2^32 CRC collision.
* **Classification** — :meth:`RecordFile.verify` folds the scan into an
  :class:`IntegrityReport`: mid-file corruption (``corrupt_ranges``,
  always suspicious) is distinguished from a trailing problem, and a
  trailing *torn write* (a clean prefix of an append: truncated header/
  payload or missing terminator) is distinguished from trailing bit rot
  (e.g. a checksum mismatch with all bytes present) via
  :attr:`IntegrityReport.tail_is_torn` — only the former is the normal
  crash-recovery case that loaders may stay silent about.
* **Salvage** — :meth:`RecordFile.salvage` rewrites the file with the
  intact records only (atomic replace + directory fsync) after
  quarantining every corrupt byte range, losslessly, into a
  ``<name>.corrupt`` sidecar record file.
* **Durability** — appends fsync the file (and the parent directory
  when the append created it); :meth:`RecordFile.rewrite` fsyncs the
  temp file *and* the parent directory after ``os.replace``, so the
  atomic replacement survives power loss.

Failpoints (armed via :mod:`repro.core.faults`):
``recordfile.append.pre_write``, ``recordfile.append.pre_fsync``,
``recordfile.rewrite.replace``, ``recordfile.rewrite.post_replace``.
"""

from __future__ import annotations

import base64
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.core import faults
from repro.core.errors import StorageError
from repro.core.faults import SimulatedCrash, TornWrite

__all__ = ["RecordFile", "IntegrityReport", "CorruptRange", "ScanEvent"]

_HEADER_LENGTH = 8 + 1 + 8 + 1

#: tail problems a clean prefix of an interrupted append can produce —
#: the normal crash case, as opposed to in-place corruption
_TORN_TAIL_PROBLEMS = frozenset(
    {"truncated header", "truncated payload", "missing record terminator"}
)


@dataclass(frozen=True)
class CorruptRange:
    """One skipped byte range and why it failed to parse."""

    offset: int
    end: int
    problem: str

    @property
    def length(self) -> int:
        return self.end - self.offset

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.offset}:{self.end}] {self.problem}"


@dataclass(frozen=True)
class ScanEvent:
    """One event of a salvage scan: an intact record or a skipped range."""

    kind: str  # "record" | "corrupt" | "tail"
    offset: int
    end: int
    record: Any = None
    problem: str = ""


@dataclass
class IntegrityReport:
    """What a full salvage scan found in one record file."""

    path: Path
    total_bytes: int = 0
    intact_records: int = 0
    #: mid-file regions the resync scan skipped (always suspicious)
    corrupt_ranges: list[CorruptRange] = field(default_factory=list)
    #: unparseable trailing region, when the scan could not resync
    tail_problem: Optional[str] = None
    tail_offset: int = 0

    @property
    def is_clean(self) -> bool:
        """No corruption of any kind, not even a torn tail."""
        return not self.corrupt_ranges and self.tail_problem is None

    @property
    def tail_is_torn(self) -> bool:
        """The trailing problem is a clean crash tear, not bit rot."""
        return self.tail_problem in _TORN_TAIL_PROBLEMS

    @property
    def needs_attention(self) -> bool:
        """Corruption a loader must surface (mid-file, or rotted tail)."""
        return bool(self.corrupt_ranges) or (
            self.tail_problem is not None and not self.tail_is_torn
        )

    @property
    def corrupt_bytes(self) -> int:
        total = sum(r.length for r in self.corrupt_ranges)
        if self.tail_problem is not None:
            total += self.total_bytes - self.tail_offset
        return total

    def render(self) -> str:
        """Human-readable multi-line summary (the ``fsck`` report)."""
        lines = [
            f"{self.path}: {self.total_bytes} bytes, "
            f"{self.intact_records} intact record(s)"
        ]
        for corrupt in self.corrupt_ranges:
            lines.append(
                f"  corrupt [{corrupt.offset}:{corrupt.end}] "
                f"({corrupt.length} bytes): {corrupt.problem}"
            )
        if self.tail_problem is not None:
            kind = "torn tail" if self.tail_is_torn else "corrupt tail"
            lines.append(
                f"  {kind} [{self.tail_offset}:{self.total_bytes}] "
                f"({self.total_bytes - self.tail_offset} bytes): "
                f"{self.tail_problem}"
            )
        if self.is_clean:
            lines.append("  clean")
        return "\n".join(lines)


def _fsync_directory(directory: Path) -> None:
    """Make a directory entry durable (rename/create survives power loss)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _frame(record: Any) -> bytes:
    """Serialise one record into its framed on-disk bytes."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return f"{len(payload):08d} {crc:08x}\n".encode("ascii") + payload + b"\n"


class RecordFile:
    """Append-only record log with checksummed, resynchronizing recovery."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # -- writing ------------------------------------------------------------

    def append(self, record: Any) -> tuple[int, int]:
        """Append one JSON-serialisable record, fsync'd.

        Returns the appended record's byte range ``(offset, end)``.
        """
        return self._append_blob(_frame(record))

    def append_many(self, records: Iterator[Any] | list[Any]) -> int:
        """Append several records with one open/fsync; returns the count."""
        chunks = []
        count = 0
        for record in records:
            chunks.append(_frame(record))
            count += 1
        if not chunks:
            return 0
        self._append_blob(b"".join(chunks))
        return count

    def append_stream(self, records: Iterator[Any] | list[Any]) -> int:
        """Append records one frame at a time with a single fsync.

        The streaming sibling of :meth:`append_many`: frames are
        written to the open handle as the iterator produces them, so an
        arbitrarily large record stream appends at O(largest record)
        memory instead of materializing the joined blob. The
        ``recordfile.append.pre_write`` failpoint fires once per frame
        (a torn write crashes mid-stream, leaving the already-written
        frames plus a torn prefix — exactly what a power loss leaves),
        and ``recordfile.append.pre_fsync`` fires once before the
        single fsync. Returns the number of records appended.
        """
        creating = not self.path.exists()
        count = 0
        with open(self.path, "ab") as handle:
            for record in records:
                blob = _frame(record)
                if faults._PLAN is not None:  # noqa: SLF001
                    try:
                        blob = faults.fire("recordfile.append.pre_write", blob)
                    except TornWrite as torn:
                        handle.write(torn.data)
                        handle.flush()
                        os.fsync(handle.fileno())
                        raise SimulatedCrash(
                            f"torn streamed append to {self.path}: "
                            f"{len(torn.data)}/{len(blob)} bytes survive"
                        ) from None
                handle.write(blob)
                count += 1
            if faults._PLAN is not None:  # noqa: SLF001
                faults.fire("recordfile.append.pre_fsync")
            handle.flush()
            os.fsync(handle.fileno())
        if creating:
            _fsync_directory(self.path.parent)
        return count

    def _append_blob(self, blob: bytes) -> tuple[int, int]:
        """The one durable append path (failpoint-instrumented)."""
        creating = not self.path.exists()
        with open(self.path, "ab") as handle:
            offset = handle.tell()
            if faults._PLAN is not None:  # noqa: SLF001 - zero-cost guard
                try:
                    blob = faults.fire("recordfile.append.pre_write", blob)
                except TornWrite as torn:
                    # power loss mid-write: a prefix reaches the platter
                    handle.write(torn.data)
                    handle.flush()
                    os.fsync(handle.fileno())
                    raise SimulatedCrash(
                        f"torn append to {self.path}: "
                        f"{len(torn.data)}/{len(blob)} bytes survive"
                    ) from None
            handle.write(blob)
            if faults._PLAN is not None:  # noqa: SLF001
                faults.fire("recordfile.append.pre_fsync")
            handle.flush()
            os.fsync(handle.fileno())
        if creating:
            _fsync_directory(self.path.parent)
        return offset, offset + len(blob)

    def rewrite(self, records: list[Any]) -> None:
        """Atomically replace the file's contents (write-temp-and-rename).

        Durable: the temp file is fsync'd by its appends (or explicitly
        for the empty case), and the parent directory is fsync'd after
        ``os.replace`` so the rename itself survives power loss.
        """
        temp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        temp = RecordFile(temp_path)
        if temp_path.exists():
            temp_path.unlink()
        temp.append_many(records)
        if not records:
            # the fsync'd-append path never ran; create + sync explicitly
            with open(temp_path, "wb") as handle:
                handle.flush()
                os.fsync(handle.fileno())
        if faults._PLAN is not None:  # noqa: SLF001
            faults.fire("recordfile.rewrite.replace")
        os.replace(temp_path, self.path)
        if faults._PLAN is not None:  # noqa: SLF001
            faults.fire("recordfile.rewrite.post_replace")
        _fsync_directory(self.path.parent)

    # -- reading ------------------------------------------------------------

    def records(self, *, strict: bool = False) -> Iterator[Any]:
        """Stream all intact records in order (no whole-file read).

        Stops at the first problem: a torn/corrupt tail is silently
        ignored (crash recovery); with ``strict=True`` any corruption
        raises :class:`~repro.core.errors.StorageError`. Use
        :meth:`scan`/:meth:`verify` to resynchronize past mid-file
        corruption instead of stopping.
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            while True:
                header = handle.read(_HEADER_LENGTH)
                if not header:
                    return
                if len(header) < _HEADER_LENGTH:
                    self._tail_problem(strict, "truncated header")
                    return
                try:
                    length = int(header[0:8])
                    crc_expected = int(header[9:17], 16)
                except ValueError:
                    self._tail_problem(strict, "unparseable header")
                    return
                if header[8:9] != b" " or header[17:18] != b"\n":
                    self._tail_problem(strict, "malformed header framing")
                    return
                body = handle.read(length + 1)
                if len(body) < length + 1:
                    self._tail_problem(strict, "truncated payload")
                    return
                payload = body[:length]
                if zlib.crc32(payload) & 0xFFFFFFFF != crc_expected:
                    self._tail_problem(strict, "checksum mismatch")
                    return
                if body[length:] != b"\n":
                    self._tail_problem(strict, "missing record terminator")
                    return
                yield json.loads(payload.decode("utf-8"))

    @staticmethod
    def _tail_problem(strict: bool, problem: str) -> None:
        if strict:
            raise StorageError(f"corrupt record file: {problem}")

    # -- salvage scan -------------------------------------------------------

    def scan(self) -> Iterator[ScanEvent]:
        """Full salvage scan: records *and* skipped ranges, with resync.

        Unlike :meth:`records`, corruption does not end the scan: the
        corrupt region is reported as one ``"corrupt"`` event and the
        scan resumes at the next plausible record header. A trailing
        region with no further header is a single ``"tail"`` event.
        (The repair path reads the whole file; the happy path,
        :meth:`records`, streams.)
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        offset = 0
        while offset < len(data):
            parsed = _parse_record(data, offset)
            if isinstance(parsed, str):  # a problem, not a record
                resync = _find_resync(data, offset + 1)
                if resync is None:
                    yield ScanEvent("tail", offset, len(data), problem=parsed)
                    return
                yield ScanEvent("corrupt", offset, resync, problem=parsed)
                offset = resync
                continue
            record, end = parsed
            yield ScanEvent("record", offset, end, record=record)
            offset = end

    def verify(self) -> IntegrityReport:
        """Scan the whole file and report its integrity (read-only)."""
        report = IntegrityReport(
            path=self.path, total_bytes=self.size_bytes()
        )
        for event in self.scan():
            if event.kind == "record":
                report.intact_records += 1
            elif event.kind == "corrupt":
                report.corrupt_ranges.append(
                    CorruptRange(event.offset, event.end, event.problem)
                )
            else:  # tail
                report.tail_problem = event.problem
                report.tail_offset = event.offset
        return report

    def salvage(
        self, quarantine: Optional[str | Path] = None
    ) -> IntegrityReport:
        """Repair in place: keep intact records, quarantine the rest.

        Every corrupt byte range is preserved losslessly (base64) in a
        ``<name>.corrupt`` sidecar record file — one record per range,
        with its original offset and problem — then the file is
        atomically rewritten with only the intact records. Returns the
        pre-salvage :class:`IntegrityReport`; its
        :attr:`~IntegrityReport.intact_records` is the surviving count.
        A clean file is left untouched (no rewrite, no sidecar).
        """
        if quarantine is None:
            quarantine = self.path.with_name(self.path.name + ".corrupt")
        data = self.path.read_bytes() if self.path.exists() else b""
        report = IntegrityReport(path=self.path, total_bytes=len(data))
        intact: list[Any] = []
        skipped: list[CorruptRange] = []
        for event in self.scan():
            if event.kind == "record":
                report.intact_records += 1
                intact.append(event.record)
            elif event.kind == "corrupt":
                report.corrupt_ranges.append(
                    CorruptRange(event.offset, event.end, event.problem)
                )
                skipped.append(CorruptRange(event.offset, event.end, event.problem))
            else:
                report.tail_problem = event.problem
                report.tail_offset = event.offset
                skipped.append(
                    CorruptRange(event.offset, len(data), event.problem)
                )
        if not skipped:
            return report
        sidecar = RecordFile(quarantine)
        sidecar.append_many(
            {
                "offset": corrupt.offset,
                "length": corrupt.length,
                "problem": corrupt.problem,
                "data_b64": base64.b64encode(
                    data[corrupt.offset : corrupt.end]
                ).decode("ascii"),
            }
            for corrupt in skipped
        )
        self.rewrite(intact)
        return report

    def count(self) -> int:
        """Number of intact records (stops at the first problem)."""
        return sum(1 for __ in self.records())

    def exists(self) -> bool:
        """True when the file exists on disk."""
        return self.path.exists()

    def size_bytes(self) -> int:
        """File size in bytes (0 when absent) — a storage-cost metric."""
        return self.path.stat().st_size if self.path.exists() else 0


# ---------------------------------------------------------------------------
# parsing helpers (module-level: shared by the stream and salvage paths)
# ---------------------------------------------------------------------------

def _parse_record(data: bytes, offset: int) -> tuple[Any, int] | str:
    """Parse one framed record at *offset*; a problem string on failure."""
    remaining = len(data) - offset
    if remaining < _HEADER_LENGTH:
        return "truncated header"
    header = data[offset : offset + _HEADER_LENGTH]
    try:
        length = int(header[0:8])
        crc_expected = int(header[9:17], 16)
    except ValueError:
        return "unparseable header"
    if header[8:9] != b" " or header[17:18] != b"\n":
        return "malformed header framing"
    start = offset + _HEADER_LENGTH
    end = start + length
    if end + 1 > len(data):
        return "truncated payload"
    payload = data[start:end]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc_expected:
        return "checksum mismatch"
    if data[end : end + 1] != b"\n":
        return "missing record terminator"
    try:
        record = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return "unparseable payload"
    return record, end + 1


def _find_resync(data: bytes, start: int) -> Optional[int]:
    """Next offset >= *start* where a fully valid record begins.

    Headers end with a newline at byte 17, and intact payloads are
    single-line JSON (never a raw newline), so scanning the newline
    positions finds every candidate; a candidate only counts when the
    complete record (CRC, terminator, JSON) validates.
    """
    search_from = start + _HEADER_LENGTH - 1
    while True:
        newline = data.find(b"\n", search_from)
        if newline == -1:
            return None
        candidate = newline - (_HEADER_LENGTH - 1)
        if candidate >= start and not isinstance(
            _parse_record(data, candidate), str
        ):
            return candidate
        search_from = newline + 1
