"""An append-only, checksummed record file.

The SEED prototype persisted its database; this module provides the
storage primitive our engine uses: a log of length-prefixed,
CRC-protected JSON records. Appends are atomic at the record level — a
torn final record (crash mid-write) is detected by checksum/length
mismatch and ignored by the recovery scan, so the file never poisons a
load.

Format, per record::

    8 bytes  payload length (decimal, zero-padded ASCII)
    1 byte   space
    8 bytes  CRC32 of payload (hex, zero-padded ASCII)
    1 byte   newline
    N bytes  payload (UTF-8 JSON)
    1 byte   newline

The ASCII framing keeps files inspectable with standard tools while
remaining strict enough for reliable recovery.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Iterator

from repro.core.errors import StorageError

__all__ = ["RecordFile"]

_HEADER_LENGTH = 8 + 1 + 8 + 1


class RecordFile:
    """Append-only record log with checksummed recovery."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # -- writing ------------------------------------------------------------

    def append(self, record: Any) -> None:
        """Append one JSON-serialisable record, fsync'd."""
        payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        )
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        header = f"{len(payload):08d} {crc:08x}\n".encode("ascii")
        with open(self.path, "ab") as handle:
            handle.write(header + payload + b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append_many(self, records: Iterator[Any] | list[Any]) -> int:
        """Append several records with one open/fsync; returns the count."""
        chunks = []
        count = 0
        for record in records:
            payload = json.dumps(
                record, separators=(",", ":"), sort_keys=True
            ).encode("utf-8")
            crc = zlib.crc32(payload) & 0xFFFFFFFF
            chunks.append(f"{len(payload):08d} {crc:08x}\n".encode("ascii"))
            chunks.append(payload + b"\n")
            count += 1
        if not chunks:
            return 0
        with open(self.path, "ab") as handle:
            handle.write(b"".join(chunks))
            handle.flush()
            os.fsync(handle.fileno())
        return count

    def rewrite(self, records: list[Any]) -> None:
        """Atomically replace the file's contents (write-temp-and-rename)."""
        temp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        temp = RecordFile(temp_path)
        if temp_path.exists():
            temp_path.unlink()
        temp.append_many(records)
        if not records:
            temp_path.touch()
        os.replace(temp_path, self.path)

    # -- reading ----------------------------------------------------------------

    def records(self, *, strict: bool = False) -> Iterator[Any]:
        """Yield all intact records in order.

        A torn/corrupt tail is silently ignored (crash recovery);
        corruption *before* intact data raises :class:`StorageError`
        unless it is at the very end. With ``strict=True`` any
        corruption raises.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        offset = 0
        while offset < len(data):
            remaining = len(data) - offset
            if remaining < _HEADER_LENGTH:
                self._tail_problem(strict, "truncated header")
                return
            header = data[offset : offset + _HEADER_LENGTH]
            try:
                length = int(header[0:8])
                crc_expected = int(header[9:17], 16)
            except ValueError:
                self._tail_problem(strict, "unparseable header")
                return
            if header[8:9] != b" " or header[17:18] != b"\n":
                self._tail_problem(strict, "malformed header framing")
                return
            start = offset + _HEADER_LENGTH
            end = start + length
            if end + 1 > len(data):
                self._tail_problem(strict, "truncated payload")
                return
            payload = data[start:end]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc_expected:
                self._tail_problem(strict, "checksum mismatch")
                return
            if data[end : end + 1] != b"\n":
                self._tail_problem(strict, "missing record terminator")
                return
            yield json.loads(payload.decode("utf-8"))
            offset = end + 1

    @staticmethod
    def _tail_problem(strict: bool, problem: str) -> None:
        if strict:
            raise StorageError(f"corrupt record file: {problem}")

    def count(self) -> int:
        """Number of intact records."""
        return sum(1 for __ in self.records())

    def exists(self) -> bool:
        """True when the file exists on disk."""
        return self.path.exists()

    def size_bytes(self) -> int:
        """File size in bytes (0 when absent) — a storage-cost metric."""
        return self.path.stat().st_size if self.path.exists() else 0
