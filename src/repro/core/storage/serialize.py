"""Canonical dict serialisation of schemas and databases.

``schema_to_dict``/``schema_from_dict`` and ``database_to_dict``/
``database_from_dict`` produce/consume plain JSON-compatible structures
covering the *entire* database state: schema (including generalization
links, covering conditions, attribute declarations, and attached
procedure names), live items, tombstones, the delta version store
(including compaction's snapshot markers, so squashed/consolidated
chains round-trip), the version tree, pattern links, and the dirty
set — a load is a faithful resumption point.

Attached procedures serialise by *name*; loading re-binds them against a
:class:`~repro.core.schema.attached.ProcedureRegistry` (the process-wide
default unless one is passed). Unknown names are an error — silently
dropping integrity code would be worse.

Values serialise natively when JSON-compatible; ``datetime.date`` values
are tagged (``{"$date": "1986-02-05"}``).
"""

from __future__ import annotations

import datetime
from typing import Any, Iterable, Iterator, Optional

from repro.core.bulk import load_item_states
from repro.core.database import SeedDatabase
from repro.core.errors import StorageError
from repro.core.objects import ObjectState, SeedObject
from repro.core.relationships import RelationshipState, SeedRelationship
from repro.core.schema.association import Association, Attribute, Role
from repro.core.schema.attached import ProcedureRegistry, default_registry
from repro.core.schema.entity_class import EntityClass
from repro.core.schema.generalization import specialize
from repro.core.schema.schema import Schema
from repro.core.values import sort_by_name
from repro.core.versions.version_id import VersionId

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "database_to_dict",
    "database_from_dict",
    "iter_image_records",
    "database_from_records",
    "ingest_image_records",
    "txn_delta_from_txn",
    "apply_txn_delta",
    "schema_delta_from_migration",
    "apply_schema_delta",
    "restore_delta_from_db",
    "apply_restore_delta",
    "version_delta_from_db",
    "apply_version_delta",
]

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# value encoding
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Encode one stored value into a JSON-compatible form."""
    if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
        return {"$date": value.isoformat()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise StorageError(f"cannot serialise value of type {type(value).__name__}")


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, dict):
        if set(encoded) == {"$date"}:
            return datetime.date.fromisoformat(encoded["$date"])
        raise StorageError(f"unknown tagged value: {sorted(encoded)}")
    return encoded


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------

def _class_to_dict(entity_class: EntityClass) -> dict:
    return {
        "name": entity_class.name,
        "doc": entity_class.doc,
        "sort": entity_class.value_sort.name if entity_class.value_sort else None,
        "cardinality": str(entity_class.cardinality)
        if entity_class.cardinality
        else None,
        "covering": entity_class.covering,
        "procedures": [proc.name for proc in entity_class.attached_procedures],
        "dependents": [
            _class_to_dict(dependent) for dependent in entity_class.dependents
        ],
    }


def schema_to_dict(schema: Schema) -> dict:
    """Serialise a schema (inverse: :func:`schema_from_dict`)."""
    return {
        "name": schema.name,
        "classes": [_class_to_dict(c) for c in schema.classes],
        "class_generalizations": [
            {"general": c.general.name, "special": c.name}
            for c in schema.classes
            if c.general is not None
        ],
        "associations": [
            {
                "name": a.name,
                "doc": a.doc,
                "acyclic": a.acyclic,
                "covering": a.covering,
                "procedures": [proc.name for proc in a.attached_procedures],
                "roles": [
                    {
                        "name": role.name,
                        "target": role.target.name,
                        "cardinality": str(role.cardinality),
                    }
                    for role in a.roles
                ],
                "attributes": [
                    {
                        "name": attr.name,
                        "sort": attr.sort.name,
                        "cardinality": str(attr.cardinality),
                        "doc": attr.doc,
                    }
                    for attr in a.attributes
                ],
            }
            for a in schema.associations
        ],
        "association_generalizations": [
            {"general": a.general.name, "special": a.name}
            for a in schema.associations
            if a.general is not None
        ],
    }


def _class_from_dict(
    data: dict, registry: ProcedureRegistry
) -> EntityClass:
    entity_class = EntityClass(
        data["name"],
        value_sort=sort_by_name(data["sort"]) if data["sort"] else None,
        doc=data.get("doc", ""),
    )
    entity_class.covering = data.get("covering", False)
    for proc_name in data.get("procedures", ()):
        entity_class.attach(registry.get(proc_name))
    _attach_dependents(entity_class, data.get("dependents", ()), registry)
    return entity_class


def _attach_dependents(
    parent: EntityClass, dependents: Any, registry: ProcedureRegistry
) -> None:
    for data in dependents:
        child = parent.add_dependent(
            data["name"],
            data["cardinality"],
            value_sort=sort_by_name(data["sort"]) if data["sort"] else None,
            doc=data.get("doc", ""),
        )
        child.covering = data.get("covering", False)
        for proc_name in data.get("procedures", ()):
            child.attach(registry.get(proc_name))
        _attach_dependents(child, data.get("dependents", ()), registry)


def schema_from_dict(
    data: dict, registry: Optional[ProcedureRegistry] = None
) -> Schema:
    """Rebuild a schema from its dict form."""
    registry = registry or default_registry()
    schema = Schema(data["name"])
    for class_data in data["classes"]:
        schema.add_class(_class_from_dict(class_data, registry))
    for assoc_data in data["associations"]:
        roles = [
            Role(
                role["name"],
                schema.entity_class(role["target"]),
                role["cardinality"],
            )
            for role in assoc_data["roles"]
        ]
        association = Association(
            assoc_data["name"],
            roles[0],
            roles[1],
            acyclic=assoc_data.get("acyclic", False),
            doc=assoc_data.get("doc", ""),
        )
        association.covering = assoc_data.get("covering", False)
        for proc_name in assoc_data.get("procedures", ()):
            association.attach(registry.get(proc_name))
        for attr in assoc_data.get("attributes", ()):
            association.add_attribute(
                Attribute(
                    attr["name"],
                    sort_by_name(attr["sort"]),
                    attr["cardinality"],
                    doc=attr.get("doc", ""),
                )
            )
        schema.add_association(association)
    for link in data.get("class_generalizations", ()):
        specialize(
            schema.entity_class(link["general"]), schema.entity_class(link["special"])
        )
    for link in data.get("association_generalizations", ()):
        specialize(
            schema.association(link["general"]), schema.association(link["special"])
        )
    return schema.check()


# ---------------------------------------------------------------------------
# item states
# ---------------------------------------------------------------------------

def _object_state_to_dict(state: ObjectState) -> dict:
    return {
        "class": state.class_name,
        "name": state.name,
        "index": state.index,
        "parent": state.parent_oid,
        "value": encode_value(state.value),
        "deleted": state.deleted,
        "pattern": state.is_pattern,
        "inherits": list(state.inherited_pattern_oids),
    }


def _object_state_from_dict(data: dict) -> ObjectState:
    return ObjectState(
        class_name=data["class"],
        name=data["name"],
        index=data["index"],
        parent_oid=data["parent"],
        value=decode_value(data["value"]),
        deleted=data["deleted"],
        is_pattern=data["pattern"],
        inherited_pattern_oids=tuple(data["inherits"]),
    )


def _relationship_state_to_dict(state: RelationshipState) -> dict:
    return {
        "association": state.association_name,
        "bindings": [[role, oid] for role, oid in state.bindings],
        "attributes": [
            [name, encode_value(value)] for name, value in state.attributes
        ],
        "deleted": state.deleted,
        "pattern": state.is_pattern,
    }


def _relationship_state_from_dict(data: dict) -> RelationshipState:
    return RelationshipState(
        association_name=data["association"],
        bindings=tuple((role, oid) for role, oid in data["bindings"]),
        attributes=tuple(
            (name, decode_value(value)) for name, value in data["attributes"]
        ),
        deleted=data["deleted"],
        is_pattern=data["pattern"],
    )


# ---------------------------------------------------------------------------
# transaction deltas (write-ahead ``txn`` journal records)
# ---------------------------------------------------------------------------

def txn_delta_from_txn(db: SeedDatabase, txn) -> dict:
    """Serialise one committed transaction's item-state changes.

    *txn* is the committed ``_Transaction`` handed to the database's
    post-commit sink: its ``touched`` map names every item the
    transaction changed (cascaded deletions included), and freezing
    those items *after* commit captures exactly the states replay must
    reproduce. ``dirty`` records which touched keys are in the dirty
    set at commit time so the replayed database's dirty tracking (a
    serialised part of the canonical image) matches the live one.
    """
    objects = []
    relationships = []
    for key in sorted(txn.touched):
        item = txn.touched[key][0]
        if key[0] == "o":
            objects.append([key[1], _object_state_to_dict(item.freeze())])
        else:
            relationships.append(
                [key[1], _relationship_state_to_dict(item.freeze())]
            )
    dirty = db._dirty  # noqa: SLF001 - dirty parity is part of the delta
    return {
        "objects": objects,
        "relationships": relationships,
        "dirty": [list(key) for key in sorted(txn.touched) if key in dirty],
    }


def apply_txn_delta(db: SeedDatabase, delta: dict) -> int:
    """Replay one ``txn`` delta against *db*; returns items applied.

    The delta carries committed *after* states keyed by stable item
    ids, so replay is a direct state upsert — no consistency
    re-validation (the states were validated when they committed) and
    no id translation (unlike check-in packages, direct transactions
    run on the master itself). Objects apply in ascending oid order,
    which lists parents before their transaction-created children.
    Index layers are marked stale rather than rebuilt eagerly; the
    next index-backed read (including a later check-in delta's
    validation) rebuilds once.
    """
    applied = 0
    max_id = 0
    for oid, data in delta.get("objects", ()):
        state = _object_state_from_dict(data)
        obj = db._objects.get(oid)  # noqa: SLF001
        if obj is None:
            parent = (
                db._objects[state.parent_oid]  # noqa: SLF001
                if state.parent_oid is not None
                else None
            )
            obj = SeedObject(
                db,
                oid,
                db.schema.entity_class(state.class_name),
                state.name,
                parent=parent,
                index=state.index,
            )
            db._objects[oid] = obj  # noqa: SLF001
            if parent is not None:
                parent._attach_child(obj)  # noqa: SLF001
            elif not state.deleted:
                db._name_index[state.name] = oid  # noqa: SLF001
        else:
            if obj.parent is None:
                old_name = obj.simple_name
                if (
                    db._name_index.get(old_name) == oid  # noqa: SLF001
                    and (state.deleted or state.name != old_name)
                ):
                    del db._name_index[old_name]  # noqa: SLF001
                if not state.deleted:
                    db._name_index[state.name] = oid  # noqa: SLF001
            obj._rename(state.name)  # noqa: SLF001
            obj.entity_class = db.schema.entity_class(state.class_name)
            obj.index = state.index
        obj.value = state.value
        obj.deleted = state.deleted
        obj.is_pattern = state.is_pattern
        obj.inherited_patterns = list(state.inherited_pattern_oids)
        applied += 1
        max_id = max(max_id, oid)
    for rid, data in delta.get("relationships", ()):
        state = _relationship_state_from_dict(data)
        rel = db._relationships.get(rid)  # noqa: SLF001
        if rel is None:
            bindings = {
                role: db._objects[oid]  # noqa: SLF001
                for role, oid in state.bindings
            }
            rel = SeedRelationship(
                db, rid, db.schema.association(state.association_name), bindings
            )
            db._relationships[rid] = rel  # noqa: SLF001
            for endpoint in rel.bound_objects():
                db._incidence.setdefault(  # noqa: SLF001
                    endpoint.oid, []
                ).append(rid)
        else:
            rel.association = db.schema.association(state.association_name)
        rel.deleted = state.deleted
        rel.is_pattern = state.is_pattern
        rel._attributes = dict(state.attributes)  # noqa: SLF001
        applied += 1
        max_id = max(max_id, rid)
    db._next_id = max(db._next_id, max_id + 1)  # noqa: SLF001
    db._dirty.update(  # noqa: SLF001
        tuple(key) for key in delta.get("dirty", ())
    )
    db.patterns.rebuild_index()
    db.indexes.mark_stale()
    db.completeness.invalidate()
    return applied


# ---------------------------------------------------------------------------
# non-transactional mutation deltas (``schema`` / ``restore`` / ``version``
# journal records) — the change-event payloads of the generalized seam
# ---------------------------------------------------------------------------

def schema_delta_from_migration(
    db: SeedDatabase, new_schema: Any, schema_version: int
) -> dict:
    """Serialise one committed schema migration (``schema`` record).

    Captured *after* the migration succeeded: the new schema plus the
    migration stats (how many live items were re-bound, and the schema
    version index the migration registered). Replay needs only the
    schema — the stats make the journal self-describing.
    """
    return {
        "schema": schema_to_dict(new_schema),
        "stats": {
            "schema_version": schema_version,
            "objects": len(db._objects),  # noqa: SLF001
            "relationships": len(db._relationships),  # noqa: SLF001
        },
    }


def apply_schema_delta(
    db: SeedDatabase, delta: dict, registry: Optional[ProcedureRegistry] = None
) -> int:
    """Replay one ``schema`` delta; returns the schema version index.

    The migration was validated when it committed, so replay re-binds
    every live item by name without re-running consistency checks —
    the same direct-upsert stance as :func:`apply_txn_delta`. Mirrors
    the post-validation effects of
    :meth:`~repro.core.database.SeedDatabase.migrate_schema`: rebind,
    index rebuild, whole-database dirty marking, completeness and plan
    cache invalidation, schema version registration.
    """
    new_schema = schema_from_dict(delta["schema"], registry)
    for obj in db._objects.values():  # noqa: SLF001
        obj.entity_class = new_schema.entity_class(obj.entity_class.full_name)
    for rel in db._relationships.values():  # noqa: SLF001
        rel.association = new_schema.association(rel.association.name)
    db.schema = new_schema
    db.indexes.rebuild()
    for obj in db._objects.values():  # noqa: SLF001
        db._dirty.add(("o", obj.oid))  # noqa: SLF001
    for rel in db._relationships.values():  # noqa: SLF001
        db._dirty.add(("r", rel.rid))  # noqa: SLF001
    db.completeness.invalidate()
    plan_cache = getattr(db, "_plan_cache", None)
    if plan_cache is not None:
        plan_cache.clear()
    return db.versions.register_schema_version(new_schema)


def restore_delta_from_db(db: SeedDatabase, version: Optional[str]) -> dict:
    """Serialise one committed view restore (``restore`` record).

    Captured *after* :meth:`~repro.core.database.SeedDatabase.
    restore_from_view` replaced the live items, so freezing the live
    state *is* the restored view delta — the version store itself may
    be compacted later, so replay must not depend on walking the chain
    again. *version* is the restored version id (``None`` for a raw
    view restore outside :meth:`select_version`).
    """
    return {
        "version": version,
        "objects": [
            [obj.oid, _object_state_to_dict(obj.freeze())]
            for obj in db.all_objects_raw()
        ],
        "relationships": [
            [rel.rid, _relationship_state_to_dict(rel.freeze())]
            for rel in db.all_relationships_raw()
        ],
        "next_id": db._next_id,  # noqa: SLF001
    }


def apply_restore_delta(db: SeedDatabase, delta: dict) -> int:
    """Replay one ``restore`` delta; returns the number of items loaded.

    Mirrors :meth:`~repro.core.database.SeedDatabase.restore_from_view`
    (dirty set cleared, one-shot state materialisation, completeness
    invalidated) and, when the restore came from
    :meth:`select_version`, re-bases the version history on the
    restored version exactly as the live call did.
    """
    db._dirty.clear()  # noqa: SLF001
    load_item_states(
        db,
        (
            (oid, _object_state_from_dict(data))
            for oid, data in delta.get("objects", ())
        ),
        (
            (rid, _relationship_state_from_dict(data))
            for rid, data in delta.get("relationships", ())
        ),
        next_id_floor=delta.get("next_id", 0),
    )
    db.completeness.invalidate()
    version = delta.get("version")
    if version is not None:
        vid = VersionId.parse(version)
        if vid in db.versions.tree:
            db.versions.current_base = vid
    return len(delta.get("objects", ())) + len(delta.get("relationships", ()))


def version_delta_from_db(db: SeedDatabase, vid: VersionId) -> dict:
    """Serialise one committed ``create_version`` (``version`` record).

    Captured *after* the manager recorded the snapshot: the delta
    carries the version's identity (id, parent, schema version,
    snapshot flag) plus exactly the cell states the store holds for it
    (dirty-item deltas and any states an online snapshot consolidation
    materialized), in store insertion order so replay reproduces the
    canonical image byte-for-byte.
    """
    store = db.versions.store
    cells = []
    for key in store.keys():
        kind, item_id = key
        for version, state, materialized in store.entries_of(key):
            if version != vid:
                continue
            encoded = (
                _object_state_to_dict(state)
                if kind == "o"
                else _relationship_state_to_dict(state)  # type: ignore[arg-type]
            )
            cell = {"kind": kind, "id": item_id, "state": encoded}
            if materialized:
                cell["materialized"] = True
            cells.append(cell)
    parent = db.versions.tree.parent(vid)
    return {
        "version": str(vid),
        "parent": str(parent) if parent else None,
        "schema_version": db.versions.schema_version_of[vid],
        "snapshot": vid in set(store.snapshot_versions()),
        "cells": cells,
    }


def apply_version_delta(db: SeedDatabase, delta: dict) -> VersionId:
    """Replay one ``version`` delta; returns the recreated version id.

    Mirrors :meth:`~repro.core.versions.manager.VersionManager.
    create_version` from its recorded outcome: tree node, stored cell
    states (with materialisation/snapshot markers), schema version
    stamp, the dirty-set clear, and the current base moving to the new
    version.
    """
    vid = VersionId.parse(delta["version"])
    parent = VersionId.parse(delta["parent"]) if delta.get("parent") else None
    manager = db.versions
    manager.tree.add(vid, parent)
    for cell in delta.get("cells", ()):
        key = (cell["kind"], cell["id"])
        state = (
            _object_state_from_dict(cell["state"])
            if cell["kind"] == "o"
            else _relationship_state_from_dict(cell["state"])
        )
        manager.store.record(vid, key, state)
        if cell.get("materialized"):
            manager.store.mark_materialized(vid, key)
    if delta.get("snapshot"):
        manager.store.mark_snapshot(vid)
    manager.schema_version_of[vid] = delta["schema_version"]
    # the live call snapshotted *everything* dirty (items deleted by a
    # rolled-back creation simply stored nothing), then cleared the set
    db.clear_dirty()
    manager.current_base = vid
    return vid


# ---------------------------------------------------------------------------
# whole database
# ---------------------------------------------------------------------------

def database_to_dict(db: SeedDatabase) -> dict:
    """Serialise the complete database state."""
    objects = [
        {"oid": obj.oid, **_object_state_to_dict(obj.freeze())}
        for obj in db.all_objects_raw()
    ]
    relationships = [
        {"rid": rel.rid, **_relationship_state_to_dict(rel.freeze())}
        for rel in db.all_relationships_raw()
    ]
    store = db.versions.store
    cells = []
    for key in store.keys():
        kind, item_id = key
        entries = []
        for version, state, materialized in store.entries_of(key):
            encoded = (
                _object_state_to_dict(state)
                if kind == "o"
                else _relationship_state_to_dict(state)  # type: ignore[arg-type]
            )
            entry = {"version": str(version), "state": encoded}
            if materialized:
                entry["materialized"] = True
            entries.append(entry)
        cells.append({"kind": kind, "id": item_id, "states": entries})
    tree = db.versions.tree
    return {
        "format": FORMAT_VERSION,
        "name": db.name,
        "schema_versions": [
            schema_to_dict(schema) for schema in db.versions.schema_versions
        ],
        "objects": objects,
        "relationships": relationships,
        "version_cells": cells,
        "version_tree": [
            {
                "version": str(version),
                "parent": str(tree.parent(version)) if tree.parent(version) else None,
            }
            for version in tree.in_creation_order()
        ],
        "snapshot_versions": [
            str(version) for version in store.snapshot_versions()
        ],
        "schema_version_of": {
            str(version): index
            for version, index in db.versions.schema_version_of.items()
        },
        "current_base": str(db.versions.current_base)
        if db.versions.current_base
        else None,
        "dirty": sorted(list(key) for key in db._dirty),  # noqa: SLF001
    }


def database_from_dict(
    data: dict, registry: Optional[ProcedureRegistry] = None
) -> SeedDatabase:
    """Rebuild a database (inverse of :func:`database_to_dict`)."""
    if data.get("format") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported database image format {data.get('format')!r}"
        )
    schemas = [
        schema_from_dict(schema_data, registry)
        for schema_data in data["schema_versions"]
    ]
    db = SeedDatabase(schemas[-1], data["name"])
    db.versions.schema_versions = schemas
    # rebuild live items through the shared one-shot state materializer
    # (bypassing the operational interface: the image is trusted to be
    # consistent — it was checked when built); parents, name index,
    # incidence, patterns, and indexes are wired in a single pass
    load_item_states(
        db,
        (
            (record["oid"], _object_state_from_dict(record))
            for record in data["objects"]
        ),
        (
            (record["rid"], _relationship_state_from_dict(record))
            for record in data["relationships"]
        ),
    )
    # version store, tree, stamps
    for node in data["version_tree"]:
        db.versions.tree.add(
            VersionId.parse(node["version"]),
            VersionId.parse(node["parent"]) if node["parent"] else None,
        )
    for cell in data["version_cells"]:
        key = (cell["kind"], cell["id"])
        for entry in cell["states"]:
            state = (
                _object_state_from_dict(entry["state"])
                if cell["kind"] == "o"
                else _relationship_state_from_dict(entry["state"])
            )
            version = VersionId.parse(entry["version"])
            db.versions.store.record(version, key, state)
            if entry.get("materialized"):
                db.versions.store.mark_materialized(version, key)
    for version in data.get("snapshot_versions", ()):
        db.versions.store.mark_snapshot(VersionId.parse(version))
    db.versions.schema_version_of = {
        VersionId.parse(version): index
        for version, index in data["schema_version_of"].items()
    }
    db.versions.current_base = (
        VersionId.parse(data["current_base"]) if data["current_base"] else None
    )
    db._dirty = {tuple(key) for key in data["dirty"]}  # noqa: SLF001
    return db


# ---------------------------------------------------------------------------
# streaming image format
# ---------------------------------------------------------------------------
#
# The monolithic image dict materializes every item state at once; the
# streaming format decomposes the *same* canonical content into a header
# record, one record per object / relationship / version cell, and a
# counted footer, so images can be emitted and ingested one record at a
# time (O(1) extra memory — the database itself is the only O(n)
# structure on either side). The decomposition is exact:
# ``database_to_dict(database_from_records(iter_image_records(db)))`` is
# byte-identical to ``database_to_dict(db)`` under canonical JSON.

def iter_image_records(db: SeedDatabase) -> Iterator[dict]:
    """Stream the canonical image of *db* as self-describing records.

    Record shapes, in order:

    * ``{"h": {...}}`` — the image header: everything of
      :func:`database_to_dict` except the three per-item collections
      (format, name, schema versions, version tree, snapshot markers,
      schema stamps, current base, dirty set);
    * ``{"o": oid, "s": {...}}`` — one live/tombstoned object state;
    * ``{"r": rid, "s": {...}}`` — one relationship state;
    * ``{"c": {...}}`` — one version-store cell (all stored states of
      one item), in store insertion order;
    * ``{"end": {"o": n, "r": n, "c": n}}`` — counted footer; a stream
      that stops early is detectably truncated.
    """
    tree = db.versions.tree
    store = db.versions.store
    yield {
        "h": {
            "format": FORMAT_VERSION,
            "name": db.name,
            "schema_versions": [
                schema_to_dict(schema) for schema in db.versions.schema_versions
            ],
            "version_tree": [
                {
                    "version": str(version),
                    "parent": str(tree.parent(version))
                    if tree.parent(version)
                    else None,
                }
                for version in tree.in_creation_order()
            ],
            "snapshot_versions": [
                str(version) for version in store.snapshot_versions()
            ],
            "schema_version_of": {
                str(version): index
                for version, index in db.versions.schema_version_of.items()
            },
            "current_base": str(db.versions.current_base)
            if db.versions.current_base
            else None,
            "dirty": sorted(list(key) for key in db._dirty),  # noqa: SLF001
        }
    }
    counts = {"o": 0, "r": 0, "c": 0}
    for obj in db.all_objects_raw():
        counts["o"] += 1
        yield {"o": obj.oid, "s": _object_state_to_dict(obj.freeze())}
    for rel in db.all_relationships_raw():
        counts["r"] += 1
        yield {"r": rel.rid, "s": _relationship_state_to_dict(rel.freeze())}
    for key in store.keys():
        kind, item_id = key
        entries = []
        for version, state, materialized in store.entries_of(key):
            encoded = (
                _object_state_to_dict(state)
                if kind == "o"
                else _relationship_state_to_dict(state)  # type: ignore[arg-type]
            )
            entry = {"version": str(version), "state": encoded}
            if materialized:
                entry["materialized"] = True
            entries.append(entry)
        counts["c"] += 1
        yield {"c": {"kind": kind, "id": item_id, "states": entries}}
    yield {"end": dict(counts)}


def database_from_records(
    records: Iterable[dict], registry: Optional[ProcedureRegistry] = None
) -> SeedDatabase:
    """Rebuild a database from a streamed image (single pass).

    Inverse of :func:`iter_image_records`: consumes the iterator once,
    feeding item states straight into the shared one-shot materializer
    without ever holding the full image in memory. A stream that is
    malformed, out of order, truncated, or whose footer counts do not
    match raises :class:`~repro.core.errors.StorageError` — a partial
    image must never load silently.
    """
    iterator = iter(records)
    first = next(iterator, None)
    if not isinstance(first, dict) or "h" not in first:
        raise StorageError("image stream does not start with a header record")
    header = first["h"]
    if header.get("format") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported database image format {header.get('format')!r}"
        )
    schemas = [
        schema_from_dict(schema_data, registry)
        for schema_data in header["schema_versions"]
    ]
    db = SeedDatabase(schemas[-1], header["name"])
    db.versions.schema_versions = schemas

    cursor: dict[str, Optional[dict]] = {"record": next(iterator, None)}
    counts = {"o": 0, "r": 0, "c": 0}

    def section(tag: str) -> Iterator[dict]:
        # yields the records of one contiguous stream section, leaving
        # the first record of the *next* section in the cursor
        while True:
            record = cursor["record"]
            if not isinstance(record, dict) or tag not in record:
                return
            counts[tag] += 1
            yield record
            cursor["record"] = next(iterator, None)

    load_item_states(
        db,
        (
            (record["o"], _object_state_from_dict(record["s"]))
            for record in section("o")
        ),
        (
            (record["r"], _relationship_state_from_dict(record["s"]))
            for record in section("r")
        ),
    )
    for node in header["version_tree"]:
        db.versions.tree.add(
            VersionId.parse(node["version"]),
            VersionId.parse(node["parent"]) if node["parent"] else None,
        )
    for record in section("c"):
        cell = record["c"]
        key = (cell["kind"], cell["id"])
        for entry in cell["states"]:
            state = (
                _object_state_from_dict(entry["state"])
                if cell["kind"] == "o"
                else _relationship_state_from_dict(entry["state"])
            )
            version = VersionId.parse(entry["version"])
            db.versions.store.record(version, key, state)
            if entry.get("materialized"):
                db.versions.store.mark_materialized(version, key)
    footer = cursor["record"]
    if not isinstance(footer, dict) or "end" not in footer:
        raise StorageError(
            "truncated image stream: no footer record "
            f"(read {counts['o']} object(s), {counts['r']} relationship(s), "
            f"{counts['c']} version cell(s))"
        )
    if footer["end"] != counts:
        raise StorageError(
            f"incomplete image stream: footer declares {footer['end']}, "
            f"read {counts}"
        )
    for version in header.get("snapshot_versions", ()):
        db.versions.store.mark_snapshot(VersionId.parse(version))
    db.versions.schema_version_of = {
        VersionId.parse(version): index
        for version, index in header["schema_version_of"].items()
    }
    db.versions.current_base = (
        VersionId.parse(header["current_base"])
        if header["current_base"]
        else None
    )
    db._dirty = {tuple(key) for key in header["dirty"]}  # noqa: SLF001
    return db


def ingest_image_records(
    db: SeedDatabase, records: Iterable[dict]
) -> dict[str, SeedObject]:
    """Bulk-ingest streamed item records into a *live* database.

    The streaming counterpart of the spec-based
    :meth:`~repro.core.database.SeedDatabase.bulk_load` raw lane
    (which dispatches here for its ``records=`` form): consumes an
    :func:`iter_image_records`-style iterator one record at a time
    inside one bulk batch, so ingest never holds more than a single
    record beyond the database being built. A header is skipped, a
    counted footer is verified when present, and version-cell records
    are refused — version history belongs to images, not ingest. Item
    ids are taken from the records and must not collide with existing
    items; the whole ingest is atomic (any error rolls the batch back).
    Returns the ingested independent objects by name.
    """
    created: dict[str, SeedObject] = {}
    with db.bulk() as batch:
        txn = batch.txn
        dirty = db._dirty  # noqa: SLF001
        db.indexes.mark_stale()  # the raw lane bypasses the mutators

        def register(item: Any, key: tuple[str, int]) -> None:
            txn.touched[key] = (item, {"create"})
            if key not in dirty:
                dirty.add(key)
                txn.dirty_added.add(key)

        counts = {"o": 0, "r": 0}
        footer = None
        max_id = 0
        for record in records:
            if not isinstance(record, dict):
                raise StorageError(f"not an image record: {record!r}")
            if "h" in record:
                continue  # the header carries no items
            if "end" in record:
                footer = record["end"]
                continue
            if "c" in record:
                raise StorageError(
                    "version-cell records cannot be bulk-ingested into a "
                    "live database; load them through an image instead"
                )
            if "o" in record:
                oid = record["o"]
                if oid in db._objects:  # noqa: SLF001
                    raise StorageError(f"object id {oid} already exists")
                state = _object_state_from_dict(record["s"])
                parent = (
                    db._objects[state.parent_oid]  # noqa: SLF001
                    if state.parent_oid is not None
                    else None
                )
                obj = SeedObject(
                    db,
                    oid,
                    db.schema.entity_class(state.class_name),
                    state.name,
                    parent=parent,
                    index=state.index,
                )
                obj.value = state.value
                obj.deleted = state.deleted
                obj.is_pattern = state.is_pattern
                obj.inherited_patterns = list(state.inherited_pattern_oids)
                db._objects[oid] = obj  # noqa: SLF001
                if parent is not None:
                    parent._attach_child(obj)  # noqa: SLF001
                elif not state.deleted:
                    if state.name in db._name_index:  # noqa: SLF001
                        raise StorageError(
                            f"an object named {state.name!r} already exists"
                        )
                    db._name_index[state.name] = oid  # noqa: SLF001
                    created[state.name] = obj
                register(obj, ("o", oid))
                counts["o"] += 1
                max_id = max(max_id, oid)
            elif "r" in record:
                rid = record["r"]
                if rid in db._relationships:  # noqa: SLF001
                    raise StorageError(
                        f"relationship id {rid} already exists"
                    )
                state = _relationship_state_from_dict(record["s"])
                bindings = {
                    role: db._objects[oid]  # noqa: SLF001
                    for role, oid in state.bindings
                }
                rel = SeedRelationship(
                    db,
                    rid,
                    db.schema.association(state.association_name),
                    bindings,
                )
                rel.deleted = state.deleted
                rel.is_pattern = state.is_pattern
                rel._attributes = dict(state.attributes)  # noqa: SLF001
                db._relationships[rid] = rel  # noqa: SLF001
                for endpoint in rel.bound_objects():
                    db._incidence.setdefault(  # noqa: SLF001
                        endpoint.oid, []
                    ).append(rid)
                register(rel, ("r", rid))
                counts["r"] += 1
                max_id = max(max_id, rid)
            else:
                raise StorageError(
                    f"unknown image record shape: {sorted(record)}"
                )
        if footer is not None and (
            footer.get("o") != counts["o"] or footer.get("r") != counts["r"]
        ):
            raise StorageError(
                f"incomplete image stream: footer declares {footer}, "
                f"ingested {counts}"
            )
        db._next_id = max(db._next_id, max_id + 1)  # noqa: SLF001
        db.patterns.rebuild_index()
    return created
