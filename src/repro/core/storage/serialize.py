"""Canonical dict serialisation of schemas and databases.

``schema_to_dict``/``schema_from_dict`` and ``database_to_dict``/
``database_from_dict`` produce/consume plain JSON-compatible structures
covering the *entire* database state: schema (including generalization
links, covering conditions, attribute declarations, and attached
procedure names), live items, tombstones, the delta version store
(including compaction's snapshot markers, so squashed/consolidated
chains round-trip), the version tree, pattern links, and the dirty
set — a load is a faithful resumption point.

Attached procedures serialise by *name*; loading re-binds them against a
:class:`~repro.core.schema.attached.ProcedureRegistry` (the process-wide
default unless one is passed). Unknown names are an error — silently
dropping integrity code would be worse.

Values serialise natively when JSON-compatible; ``datetime.date`` values
are tagged (``{"$date": "1986-02-05"}``).
"""

from __future__ import annotations

import datetime
from typing import Any, Optional

from repro.core.bulk import load_item_states
from repro.core.database import SeedDatabase
from repro.core.errors import StorageError
from repro.core.objects import ObjectState, SeedObject
from repro.core.relationships import RelationshipState, SeedRelationship
from repro.core.schema.association import Association, Attribute, Role
from repro.core.schema.attached import ProcedureRegistry, default_registry
from repro.core.schema.entity_class import EntityClass
from repro.core.schema.generalization import specialize
from repro.core.schema.schema import Schema
from repro.core.values import sort_by_name
from repro.core.versions.version_id import VersionId

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "database_to_dict",
    "database_from_dict",
    "txn_delta_from_txn",
    "apply_txn_delta",
]

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# value encoding
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Encode one stored value into a JSON-compatible form."""
    if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
        return {"$date": value.isoformat()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise StorageError(f"cannot serialise value of type {type(value).__name__}")


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, dict):
        if set(encoded) == {"$date"}:
            return datetime.date.fromisoformat(encoded["$date"])
        raise StorageError(f"unknown tagged value: {sorted(encoded)}")
    return encoded


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------

def _class_to_dict(entity_class: EntityClass) -> dict:
    return {
        "name": entity_class.name,
        "doc": entity_class.doc,
        "sort": entity_class.value_sort.name if entity_class.value_sort else None,
        "cardinality": str(entity_class.cardinality)
        if entity_class.cardinality
        else None,
        "covering": entity_class.covering,
        "procedures": [proc.name for proc in entity_class.attached_procedures],
        "dependents": [
            _class_to_dict(dependent) for dependent in entity_class.dependents
        ],
    }


def schema_to_dict(schema: Schema) -> dict:
    """Serialise a schema (inverse: :func:`schema_from_dict`)."""
    return {
        "name": schema.name,
        "classes": [_class_to_dict(c) for c in schema.classes],
        "class_generalizations": [
            {"general": c.general.name, "special": c.name}
            for c in schema.classes
            if c.general is not None
        ],
        "associations": [
            {
                "name": a.name,
                "doc": a.doc,
                "acyclic": a.acyclic,
                "covering": a.covering,
                "procedures": [proc.name for proc in a.attached_procedures],
                "roles": [
                    {
                        "name": role.name,
                        "target": role.target.name,
                        "cardinality": str(role.cardinality),
                    }
                    for role in a.roles
                ],
                "attributes": [
                    {
                        "name": attr.name,
                        "sort": attr.sort.name,
                        "cardinality": str(attr.cardinality),
                        "doc": attr.doc,
                    }
                    for attr in a.attributes
                ],
            }
            for a in schema.associations
        ],
        "association_generalizations": [
            {"general": a.general.name, "special": a.name}
            for a in schema.associations
            if a.general is not None
        ],
    }


def _class_from_dict(
    data: dict, registry: ProcedureRegistry
) -> EntityClass:
    entity_class = EntityClass(
        data["name"],
        value_sort=sort_by_name(data["sort"]) if data["sort"] else None,
        doc=data.get("doc", ""),
    )
    entity_class.covering = data.get("covering", False)
    for proc_name in data.get("procedures", ()):
        entity_class.attach(registry.get(proc_name))
    _attach_dependents(entity_class, data.get("dependents", ()), registry)
    return entity_class


def _attach_dependents(
    parent: EntityClass, dependents: Any, registry: ProcedureRegistry
) -> None:
    for data in dependents:
        child = parent.add_dependent(
            data["name"],
            data["cardinality"],
            value_sort=sort_by_name(data["sort"]) if data["sort"] else None,
            doc=data.get("doc", ""),
        )
        child.covering = data.get("covering", False)
        for proc_name in data.get("procedures", ()):
            child.attach(registry.get(proc_name))
        _attach_dependents(child, data.get("dependents", ()), registry)


def schema_from_dict(
    data: dict, registry: Optional[ProcedureRegistry] = None
) -> Schema:
    """Rebuild a schema from its dict form."""
    registry = registry or default_registry()
    schema = Schema(data["name"])
    for class_data in data["classes"]:
        schema.add_class(_class_from_dict(class_data, registry))
    for assoc_data in data["associations"]:
        roles = [
            Role(
                role["name"],
                schema.entity_class(role["target"]),
                role["cardinality"],
            )
            for role in assoc_data["roles"]
        ]
        association = Association(
            assoc_data["name"],
            roles[0],
            roles[1],
            acyclic=assoc_data.get("acyclic", False),
            doc=assoc_data.get("doc", ""),
        )
        association.covering = assoc_data.get("covering", False)
        for proc_name in assoc_data.get("procedures", ()):
            association.attach(registry.get(proc_name))
        for attr in assoc_data.get("attributes", ()):
            association.add_attribute(
                Attribute(
                    attr["name"],
                    sort_by_name(attr["sort"]),
                    attr["cardinality"],
                    doc=attr.get("doc", ""),
                )
            )
        schema.add_association(association)
    for link in data.get("class_generalizations", ()):
        specialize(
            schema.entity_class(link["general"]), schema.entity_class(link["special"])
        )
    for link in data.get("association_generalizations", ()):
        specialize(
            schema.association(link["general"]), schema.association(link["special"])
        )
    return schema.check()


# ---------------------------------------------------------------------------
# item states
# ---------------------------------------------------------------------------

def _object_state_to_dict(state: ObjectState) -> dict:
    return {
        "class": state.class_name,
        "name": state.name,
        "index": state.index,
        "parent": state.parent_oid,
        "value": encode_value(state.value),
        "deleted": state.deleted,
        "pattern": state.is_pattern,
        "inherits": list(state.inherited_pattern_oids),
    }


def _object_state_from_dict(data: dict) -> ObjectState:
    return ObjectState(
        class_name=data["class"],
        name=data["name"],
        index=data["index"],
        parent_oid=data["parent"],
        value=decode_value(data["value"]),
        deleted=data["deleted"],
        is_pattern=data["pattern"],
        inherited_pattern_oids=tuple(data["inherits"]),
    )


def _relationship_state_to_dict(state: RelationshipState) -> dict:
    return {
        "association": state.association_name,
        "bindings": [[role, oid] for role, oid in state.bindings],
        "attributes": [
            [name, encode_value(value)] for name, value in state.attributes
        ],
        "deleted": state.deleted,
        "pattern": state.is_pattern,
    }


def _relationship_state_from_dict(data: dict) -> RelationshipState:
    return RelationshipState(
        association_name=data["association"],
        bindings=tuple((role, oid) for role, oid in data["bindings"]),
        attributes=tuple(
            (name, decode_value(value)) for name, value in data["attributes"]
        ),
        deleted=data["deleted"],
        is_pattern=data["pattern"],
    )


# ---------------------------------------------------------------------------
# transaction deltas (write-ahead ``txn`` journal records)
# ---------------------------------------------------------------------------

def txn_delta_from_txn(db: SeedDatabase, txn) -> dict:
    """Serialise one committed transaction's item-state changes.

    *txn* is the committed ``_Transaction`` handed to the database's
    post-commit sink: its ``touched`` map names every item the
    transaction changed (cascaded deletions included), and freezing
    those items *after* commit captures exactly the states replay must
    reproduce. ``dirty`` records which touched keys are in the dirty
    set at commit time so the replayed database's dirty tracking (a
    serialised part of the canonical image) matches the live one.
    """
    objects = []
    relationships = []
    for key in sorted(txn.touched):
        item = txn.touched[key][0]
        if key[0] == "o":
            objects.append([key[1], _object_state_to_dict(item.freeze())])
        else:
            relationships.append(
                [key[1], _relationship_state_to_dict(item.freeze())]
            )
    dirty = db._dirty  # noqa: SLF001 - dirty parity is part of the delta
    return {
        "objects": objects,
        "relationships": relationships,
        "dirty": [list(key) for key in sorted(txn.touched) if key in dirty],
    }


def apply_txn_delta(db: SeedDatabase, delta: dict) -> int:
    """Replay one ``txn`` delta against *db*; returns items applied.

    The delta carries committed *after* states keyed by stable item
    ids, so replay is a direct state upsert — no consistency
    re-validation (the states were validated when they committed) and
    no id translation (unlike check-in packages, direct transactions
    run on the master itself). Objects apply in ascending oid order,
    which lists parents before their transaction-created children.
    Index layers are marked stale rather than rebuilt eagerly; the
    next index-backed read (including a later check-in delta's
    validation) rebuilds once.
    """
    applied = 0
    max_id = 0
    for oid, data in delta.get("objects", ()):
        state = _object_state_from_dict(data)
        obj = db._objects.get(oid)  # noqa: SLF001
        if obj is None:
            parent = (
                db._objects[state.parent_oid]  # noqa: SLF001
                if state.parent_oid is not None
                else None
            )
            obj = SeedObject(
                db,
                oid,
                db.schema.entity_class(state.class_name),
                state.name,
                parent=parent,
                index=state.index,
            )
            db._objects[oid] = obj  # noqa: SLF001
            if parent is not None:
                parent._attach_child(obj)  # noqa: SLF001
            elif not state.deleted:
                db._name_index[state.name] = oid  # noqa: SLF001
        else:
            if obj.parent is None:
                old_name = obj.simple_name
                if (
                    db._name_index.get(old_name) == oid  # noqa: SLF001
                    and (state.deleted or state.name != old_name)
                ):
                    del db._name_index[old_name]  # noqa: SLF001
                if not state.deleted:
                    db._name_index[state.name] = oid  # noqa: SLF001
            obj._rename(state.name)  # noqa: SLF001
            obj.entity_class = db.schema.entity_class(state.class_name)
            obj.index = state.index
        obj.value = state.value
        obj.deleted = state.deleted
        obj.is_pattern = state.is_pattern
        obj.inherited_patterns = list(state.inherited_pattern_oids)
        applied += 1
        max_id = max(max_id, oid)
    for rid, data in delta.get("relationships", ()):
        state = _relationship_state_from_dict(data)
        rel = db._relationships.get(rid)  # noqa: SLF001
        if rel is None:
            bindings = {
                role: db._objects[oid]  # noqa: SLF001
                for role, oid in state.bindings
            }
            rel = SeedRelationship(
                db, rid, db.schema.association(state.association_name), bindings
            )
            db._relationships[rid] = rel  # noqa: SLF001
            for endpoint in rel.bound_objects():
                db._incidence.setdefault(  # noqa: SLF001
                    endpoint.oid, []
                ).append(rid)
        else:
            rel.association = db.schema.association(state.association_name)
        rel.deleted = state.deleted
        rel.is_pattern = state.is_pattern
        rel._attributes = dict(state.attributes)  # noqa: SLF001
        applied += 1
        max_id = max(max_id, rid)
    db._next_id = max(db._next_id, max_id + 1)  # noqa: SLF001
    db._dirty.update(  # noqa: SLF001
        tuple(key) for key in delta.get("dirty", ())
    )
    db.patterns.rebuild_index()
    db.indexes.mark_stale()
    db.completeness.invalidate()
    return applied


# ---------------------------------------------------------------------------
# whole database
# ---------------------------------------------------------------------------

def database_to_dict(db: SeedDatabase) -> dict:
    """Serialise the complete database state."""
    objects = [
        {"oid": obj.oid, **_object_state_to_dict(obj.freeze())}
        for obj in db.all_objects_raw()
    ]
    relationships = [
        {"rid": rel.rid, **_relationship_state_to_dict(rel.freeze())}
        for rel in db.all_relationships_raw()
    ]
    store = db.versions.store
    cells = []
    for key in store.keys():
        kind, item_id = key
        entries = []
        for version, state, materialized in store.entries_of(key):
            encoded = (
                _object_state_to_dict(state)
                if kind == "o"
                else _relationship_state_to_dict(state)  # type: ignore[arg-type]
            )
            entry = {"version": str(version), "state": encoded}
            if materialized:
                entry["materialized"] = True
            entries.append(entry)
        cells.append({"kind": kind, "id": item_id, "states": entries})
    tree = db.versions.tree
    return {
        "format": FORMAT_VERSION,
        "name": db.name,
        "schema_versions": [
            schema_to_dict(schema) for schema in db.versions.schema_versions
        ],
        "objects": objects,
        "relationships": relationships,
        "version_cells": cells,
        "version_tree": [
            {
                "version": str(version),
                "parent": str(tree.parent(version)) if tree.parent(version) else None,
            }
            for version in tree.in_creation_order()
        ],
        "snapshot_versions": [
            str(version) for version in store.snapshot_versions()
        ],
        "schema_version_of": {
            str(version): index
            for version, index in db.versions.schema_version_of.items()
        },
        "current_base": str(db.versions.current_base)
        if db.versions.current_base
        else None,
        "dirty": sorted(list(key) for key in db._dirty),  # noqa: SLF001
    }


def database_from_dict(
    data: dict, registry: Optional[ProcedureRegistry] = None
) -> SeedDatabase:
    """Rebuild a database (inverse of :func:`database_to_dict`)."""
    if data.get("format") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported database image format {data.get('format')!r}"
        )
    schemas = [
        schema_from_dict(schema_data, registry)
        for schema_data in data["schema_versions"]
    ]
    db = SeedDatabase(schemas[-1], data["name"])
    db.versions.schema_versions = schemas
    # rebuild live items through the shared one-shot state materializer
    # (bypassing the operational interface: the image is trusted to be
    # consistent — it was checked when built); parents, name index,
    # incidence, patterns, and indexes are wired in a single pass
    load_item_states(
        db,
        (
            (record["oid"], _object_state_from_dict(record))
            for record in data["objects"]
        ),
        (
            (record["rid"], _relationship_state_from_dict(record))
            for record in data["relationships"]
        ),
    )
    # version store, tree, stamps
    for node in data["version_tree"]:
        db.versions.tree.add(
            VersionId.parse(node["version"]),
            VersionId.parse(node["parent"]) if node["parent"] else None,
        )
    for cell in data["version_cells"]:
        key = (cell["kind"], cell["id"])
        for entry in cell["states"]:
            state = (
                _object_state_from_dict(entry["state"])
                if cell["kind"] == "o"
                else _relationship_state_from_dict(entry["state"])
            )
            version = VersionId.parse(entry["version"])
            db.versions.store.record(version, key, state)
            if entry.get("materialized"):
                db.versions.store.mark_materialized(version, key)
    for version in data.get("snapshot_versions", ()):
        db.versions.store.mark_snapshot(VersionId.parse(version))
    db.versions.schema_version_of = {
        VersionId.parse(version): index
        for version, index in data["schema_version_of"].items()
    }
    db.versions.current_base = (
        VersionId.parse(data["current_base"]) if data["current_base"] else None
    )
    db._dirty = {tuple(key) for key in data["dirty"]}  # noqa: SLF001
    return db
