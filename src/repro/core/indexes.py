"""Maintained secondary indexes: every hot path becomes sublinear.

The seed answered class-extent queries, participation counts, name
lookups, and ACYCLIC checks by scanning all objects or all
relationships — O(database) work per update or query. This layer keeps
four secondary structures incrementally up to date so the same answers
cost O(answer) or O(1):

``extent``
    class full-name → set of live oids classified exactly in that
    class. A query for class ``C`` unions the sets of ``C`` and its
    transitive specializations (generalization rollup), so extents are
    read in O(|extent|). The sets include pattern-context objects;
    visibility filtering stays a query-time concern because marking a
    pattern flips the context of a whole sub-tree at once.

``names``
    sorted list of independent-object names, mirroring the database's
    ``_name_index`` keys exactly. Prefix retrieval bisects instead of
    scanning.

``participation``
    ``(association name, oid, position) → count`` over live
    **normal** (non-pattern-context) relationships. Each relationship
    contributes one count per element of its association's kind chain,
    so ``count_participations`` is a dict lookup. Virtual (pattern-
    inherited) participations are not counted here; the pattern manager
    falls back to enumeration for the few objects with pattern
    influence (tracked by ``pattern_incidence``).

``adjacency`` / ``family_rids`` / ``pattern_rids``
    per association-family edge multigraph (src oid → tgt oid →
    multiplicity) plus the sets of live normal and pattern relationship
    ids per family. ACYCLIC validation walks this graph instead of
    re-deriving it from a full relationship scan, and the incremental
    check on insert only explores reachability from the new edge's
    target.

``value_counts`` / ``participation_distinct`` (PR 5: statistics)
    per-class distinct-value counters (class full-name → type-aware
    value key → live count over the same objects the extent holds) and
    per ``(association element, position)`` distinct-participant
    counters, maintained on the same mutation paths as the structures
    above. The query planner reads them through the histogram
    accessors (:meth:`value_frequency` serves a **top-K + remainder**
    summary; :meth:`defined_count`, :meth:`distinct_participants`)
    to estimate selection selectivities and join fan-outs instead of a
    fixed heuristic. The maintained counters are exact, so the mirror
    invariant covers them too; :func:`brute_value_counts` and
    :func:`brute_participation_distinct` are the brute-force recounts
    the equivalence tests compare against.

Invariants (checked by :meth:`IndexLayer.verify` and the equivalence
tests in ``tests/test_indexes.py``):

1. **Mirror invariant** — after any committed operation, every
   structure equals what :meth:`rebuild` would compute from the raw
   records. Mutation paths in :class:`~repro.core.database.SeedDatabase`
   update the indexes in the same code paths that update the records.
2. **Rollback invariant** — every index mutation inside a transaction
   is paired with an undo closure in the transaction's undo log, so a
   rolled-back transaction leaves all structures byte-identical to the
   pre-transaction state.
3. **Status invariant** — each live relationship is indexed under
   exactly one status, ``normal`` or ``pattern`` (cached in
   ``_rel_status``); pattern-flag changes re-index through
   :meth:`refresh_relationship` / :meth:`set_relationship_status`.
4. **Fallback invariant** — indexed fast paths are only taken when
   they provably agree with the brute-force scan; pattern-influenced
   objects (inherited patterns or incident pattern relationships) use
   the scan. The brute-force reference implementations live in this
   module (:func:`brute_objects`, :func:`brute_relationships`) and in
   the pattern manager so tests can compare answers forever.

Bulk loaders that bypass the operational interface (version restore,
schema migration, image deserialization, multi-user checkout) call
:meth:`rebuild`.

Deferred maintenance (PR 4): the bulk write path
(:meth:`repro.core.database.SeedDatabase.bulk`) calls :meth:`suspend`
before a batch and :meth:`resume` after it. While suspended, every
incremental mutator is a no-op that only marks the layer *stale*; the
batch then pays **one** :meth:`rebuild` instead of per-item updates.
Query entry points stay correct throughout: they call
:meth:`_ensure_fresh`, which rebuilds on demand when a stale layer is
read mid-batch — so a read inside a bulk batch sees every batch
mutation applied so far, at the cost of one rebuild per
write-then-read boundary.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from heapq import nlargest
from typing import Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.database import SeedDatabase
    from repro.core.objects import SeedObject
    from repro.core.relationships import SeedRelationship
    from repro.core.schema.entity_class import EntityClass

__all__ = [
    "IndexLayer",
    "brute_objects",
    "brute_relationships",
    "brute_value_counts",
    "brute_participation_distinct",
    "prefix_upper_bound",
    "value_key",
]

#: relationship index status values
NORMAL = "normal"
PATTERN = "pattern"

#: the largest code point — prefixes ending here have no same-length successor
_MAX_CHAR = chr(0x10FFFF)

#: distinct values kept exactly by the top-K + remainder histogram view
TOP_K = 16


def prefix_upper_bound(prefix: str) -> Optional[str]:
    """The exclusive upper bound of the names starting with *prefix*.

    The smallest string greater than every string with that prefix:
    strip trailing ``U+10FFFF`` code points (they have no successor —
    the naive ``prefix[:-1] + chr(ord(last) + 1)`` raises
    ``ValueError`` for them), then bump the last surviving character.
    ``None`` means "no upper bound" (every character is the maximum
    code point, or the prefix is empty): scan to the end of the list.
    """
    trimmed = prefix.rstrip(_MAX_CHAR)
    if not trimmed:
        return None
    return trimmed[:-1] + chr(ord(trimmed[-1]) + 1)


def value_key(value: object) -> tuple:
    """Type-aware histogram key of a defined value.

    Mirrors the algebra's cell keying: SEED values are typed, so
    BOOLEAN ``False`` must not collapse with INTEGER ``0``.
    """
    return (type(value).__name__, value)


def _split_ids(ids: list[int], shards: int, split: str) -> list[list[int]]:
    """Deterministically partition a sorted id list into *shards* lists.

    ``range``: contiguous near-equal slices (order-preserving under
    in-order concatenation). ``hash``: bucket by ``id % shards``.
    Shards may come back empty when there are fewer ids than shards.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return [list(ids)]
    if split == "hash":
        buckets: list[list[int]] = [[] for _ in range(shards)]
        for identifier in ids:
            buckets[identifier % shards].append(identifier)
        return buckets
    if split != "range":
        raise ValueError(f"unknown split {split!r} (expected 'range' or 'hash')")
    base, extra = divmod(len(ids), shards)
    slices: list[list[int]] = []
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        slices.append(ids[start : start + size])
        start += size
    return slices


class IndexLayer:
    """Incrementally maintained secondary indexes for one database."""

    def __init__(self, database: "SeedDatabase") -> None:
        self._db = database
        #: class full-name -> set of live oids of exactly that class
        self.extent: dict[str, set[int]] = {}
        #: sorted mirror of the database's independent-name index keys
        self.names: list[str] = []
        #: (association name, oid, position) -> live normal-rel count
        self.participation: dict[tuple[str, int, int], int] = {}
        #: association element name -> live normal-rel count (incl. specials)
        self.assoc_counts: dict[str, int] = {}
        #: family root name -> src oid -> tgt oid -> edge multiplicity
        self.adjacency: dict[str, dict[int, dict[int, int]]] = {}
        #: family root name -> live normal relationship ids
        self.family_rids: dict[str, set[int]] = {}
        #: family root name -> live pattern-context relationship ids
        self.pattern_rids: dict[str, set[int]] = {}
        #: oid -> number of live pattern-context relationships touching it
        self.pattern_incidence: dict[int, int] = {}
        #: class full-name -> value key -> live objects holding the value
        #: (covers exactly the objects the extent holds; undefined
        #: values are not counted — "undefined matches nothing")
        self.value_counts: dict[str, dict[tuple, int]] = {}
        #: (association element name, position) -> distinct live oids
        #: participating there through normal relationships
        self.participation_distinct: dict[tuple[str, int], int] = {}
        #: rid -> status the relationship is currently indexed under
        self._rel_status: dict[int, str] = {}
        #: True while a bulk batch defers maintenance (see suspend())
        self._suspended = False
        #: True when mutations happened while suspended (rebuild needed)
        self._stale = False

    # ------------------------------------------------------------------
    # deferred maintenance (the bulk write path)
    # ------------------------------------------------------------------

    def suspend(self) -> None:
        """Defer all incremental maintenance until :meth:`resume`.

        Mutators become no-ops that only mark the layer stale; queries
        transparently :meth:`rebuild` on first read of a stale layer.
        """
        self._suspended = True

    def resume(self) -> None:
        """End deferred maintenance; one rebuild settles all batched work."""
        self._suspended = False
        if self._stale:
            self.rebuild()

    def mark_stale(self) -> None:
        """Record that raw-lane mutations bypassed the mutators.

        ``bulk_load`` constructs records directly (no per-item mutator
        calls, so nothing else would flag the divergence); the next
        read or :meth:`resume` then rebuilds.
        """
        self._stale = True

    def cancel_suspension(self) -> None:
        """Clear suspension without refreshing (bulk rollback rebuilds)."""
        self._suspended = False
        self._stale = False

    def _ensure_fresh(self) -> None:
        if self._stale:
            self.rebuild()

    # ------------------------------------------------------------------
    # object extent
    # ------------------------------------------------------------------

    def add_object(self, obj: "SeedObject") -> None:
        """Enter a live object into its class extent (and value stats)."""
        if self._suspended:
            self._stale = True
            return
        self.extent.setdefault(obj.entity_class.full_name, set()).add(obj.oid)
        if obj.value is not None:
            self._count_value(obj.entity_class.full_name, obj.value, +1)

    def remove_object(self, obj: "SeedObject") -> None:
        """Remove an object (tombstoned or rolled back) from its extent."""
        if self._suspended:
            self._stale = True
            return
        bucket = self.extent.get(obj.entity_class.full_name)
        if bucket is not None:
            bucket.discard(obj.oid)
            if not bucket:
                del self.extent[obj.entity_class.full_name]
        if obj.value is not None:
            self._count_value(obj.entity_class.full_name, obj.value, -1)

    def move_object(
        self, obj: "SeedObject", old_class: "EntityClass", new_class: "EntityClass"
    ) -> None:
        """Re-file an object after re-classification."""
        if self._suspended:
            self._stale = True
            return
        bucket = self.extent.get(old_class.full_name)
        if bucket is not None:
            bucket.discard(obj.oid)
            if not bucket:
                del self.extent[old_class.full_name]
        self.extent.setdefault(new_class.full_name, set()).add(obj.oid)
        if obj.value is not None:
            self._count_value(old_class.full_name, obj.value, -1)
            self._count_value(new_class.full_name, obj.value, +1)

    def update_value(
        self, obj: "SeedObject", old_value: object, new_value: object
    ) -> None:
        """Re-count a live object's value after ``set_value``.

        Called (and undone) by the database in the same code path that
        flips ``obj.value``, mirroring the other maintained structures.
        """
        if self._suspended:
            self._stale = True
            return
        class_name = obj.entity_class.full_name
        if old_value is not None:
            self._count_value(class_name, old_value, -1)
        if new_value is not None:
            self._count_value(class_name, new_value, +1)

    def _count_value(self, class_name: str, value: object, delta: int) -> None:
        bucket = self.value_counts.setdefault(class_name, {})
        key = value_key(value)
        remaining = bucket.get(key, 0) + delta
        if remaining > 0:
            bucket[key] = remaining
        else:
            bucket.pop(key, None)
            if not bucket:
                del self.value_counts[class_name]

    def extent_oids(
        self, wanted: "EntityClass", include_specials: bool = True
    ) -> list[int]:
        """Sorted oids of the extent of *wanted* (rolled up when asked).

        Sorting by oid reproduces creation order, matching the order the
        seed's full scan produced.
        """
        self._ensure_fresh()
        if not include_specials:
            return sorted(self.extent.get(wanted.full_name, ()))
        result: set[int] = set()
        result.update(self.extent.get(wanted.full_name, ()))
        for special in wanted.all_specials():
            result.update(self.extent.get(special.full_name, ()))
        return sorted(result)

    def extent_shards(
        self,
        wanted: "EntityClass",
        shards: int,
        include_specials: bool = True,
        split: str = "range",
    ) -> list[list[int]]:
        """Shard-stable partition of an extent's oids into *shards* lists.

        ``split="range"`` cuts the sorted oid list into contiguous,
        near-equal slices — concatenating the shards in order reproduces
        the exact serial scan order. ``split="hash"`` buckets by
        ``oid % shards`` — multiset-equal to the serial scan but
        order-free. Both are deterministic functions of the extent
        contents, so repeated calls against unchanged data partition
        identically (shard-stable).
        """
        return _split_ids(self.extent_oids(wanted, include_specials), shards, split)

    def family_relationship_shards(
        self, root_name: str, shards: int, split: str = "range"
    ) -> list[list[int]]:
        """Shard-stable partition of a family's relationship ids.

        Same contract as :meth:`extent_shards`, over the sorted rid list
        of :meth:`family_relationship_ids`.
        """
        return _split_ids(self.family_relationship_ids(root_name), shards, split)

    # ------------------------------------------------------------------
    # sorted name index
    # ------------------------------------------------------------------

    def add_name(self, name: str) -> None:
        """Mirror an insertion into the database's name index."""
        if self._suspended:
            self._stale = True
            return
        insort(self.names, name)

    def remove_name(self, name: str) -> None:
        """Mirror a removal from the database's name index."""
        if self._suspended:
            self._stale = True
            return
        position = bisect_left(self.names, name)
        if position < len(self.names) and self.names[position] == name:
            del self.names[position]

    def names_with_prefix(self, prefix: str) -> list[str]:
        """All indexed names starting with *prefix*, in sorted order.

        Two bisections against the successor bound (see
        :func:`prefix_upper_bound` — correct even for prefixes ending
        in ``U+10FFFF``, which have no same-length successor), then one
        slice: O(log n + |matches|).
        """
        self._ensure_fresh()
        low, high = self._prefix_range(prefix)
        return self.names[low:high]

    def _prefix_range(self, prefix: str) -> tuple[int, int]:
        """Half-open index range of the sorted names with *prefix*."""
        low = bisect_left(self.names, prefix)
        bound = prefix_upper_bound(prefix)
        high = (
            len(self.names)
            if bound is None
            else bisect_left(self.names, bound, lo=low)
        )
        return low, high

    # ------------------------------------------------------------------
    # relationship indexes
    # ------------------------------------------------------------------

    @staticmethod
    def _status_of(rel: "SeedRelationship") -> str:
        return PATTERN if rel.in_pattern_context else NORMAL

    def index_relationship(self, rel: "SeedRelationship") -> None:
        """Enter a live relationship under its current pattern status."""
        if self._suspended:
            self._stale = True
            return
        self._index_as(rel, self._status_of(rel))

    def unindex_relationship(self, rel: "SeedRelationship") -> None:
        """Remove a relationship using the status it was indexed under.

        The cached status, not the current flags, drives removal so the
        call stays correct while flags are mid-rollback.
        """
        if self._suspended:
            self._stale = True
            return
        status = self._rel_status.pop(rel.rid, None)
        if status is None:  # pragma: no cover - defensive
            return
        self._unindex_as(rel, status)

    def refresh_relationship(
        self, rel: "SeedRelationship"
    ) -> Optional[tuple[str, str]]:
        """Re-index after a pattern-flag change; returns (old, new) or None."""
        if self._suspended:
            self._stale = True
            return None
        old_status = self._rel_status.get(rel.rid)
        new_status = self._status_of(rel)
        if old_status == new_status or old_status is None:
            return None
        self.set_relationship_status(rel, new_status)
        return (old_status, new_status)

    def set_relationship_status(self, rel: "SeedRelationship", status: str) -> None:
        """Force a relationship's indexed status (used by undo closures)."""
        if self._suspended:  # pragma: no cover - undo never runs in bulk
            self._stale = True
            return
        current = self._rel_status.pop(rel.rid, None)
        if current is not None:
            self._unindex_as(rel, current)
        self._index_as(rel, status)

    def _index_as(self, rel: "SeedRelationship", status: str) -> None:
        self._rel_status[rel.rid] = status
        root_name = rel.association.family_root().name
        if status == PATTERN:
            self.pattern_rids.setdefault(root_name, set()).add(rel.rid)
            for endpoint in rel.bound_objects():
                self.pattern_incidence[endpoint.oid] = (
                    self.pattern_incidence.get(endpoint.oid, 0) + 1
                )
            return
        self.family_rids.setdefault(root_name, set()).add(rel.rid)
        for element in rel.association.kind_chain():
            self.assoc_counts[element.name] = self.assoc_counts.get(element.name, 0) + 1
            for position in (0, 1):
                key = (element.name, rel.bound_at(position).oid, position)
                previous = self.participation.get(key, 0)
                self.participation[key] = previous + 1
                if previous == 0:
                    distinct_key = (element.name, position)
                    self.participation_distinct[distinct_key] = (
                        self.participation_distinct.get(distinct_key, 0) + 1
                    )
        source_oid = rel.bound_at(0).oid
        target_oid = rel.bound_at(1).oid
        targets = self.adjacency.setdefault(root_name, {}).setdefault(source_oid, {})
        targets[target_oid] = targets.get(target_oid, 0) + 1

    def _unindex_as(self, rel: "SeedRelationship", status: str) -> None:
        root_name = rel.association.family_root().name
        if status == PATTERN:
            rids = self.pattern_rids.get(root_name)
            if rids is not None:
                rids.discard(rel.rid)
                if not rids:
                    del self.pattern_rids[root_name]
            for endpoint in rel.bound_objects():
                remaining = self.pattern_incidence.get(endpoint.oid, 0) - 1
                if remaining > 0:
                    self.pattern_incidence[endpoint.oid] = remaining
                else:
                    self.pattern_incidence.pop(endpoint.oid, None)
            return
        rids = self.family_rids.get(root_name)
        if rids is not None:
            rids.discard(rel.rid)
            if not rids:
                del self.family_rids[root_name]
        for element in rel.association.kind_chain():
            left = self.assoc_counts.get(element.name, 0) - 1
            if left > 0:
                self.assoc_counts[element.name] = left
            else:
                self.assoc_counts.pop(element.name, None)
            for position in (0, 1):
                key = (element.name, rel.bound_at(position).oid, position)
                remaining = self.participation.get(key, 0) - 1
                if remaining > 0:
                    self.participation[key] = remaining
                else:
                    self.participation.pop(key, None)
                    distinct_key = (element.name, position)
                    left_distinct = self.participation_distinct.get(distinct_key, 0) - 1
                    if left_distinct > 0:
                        self.participation_distinct[distinct_key] = left_distinct
                    else:
                        self.participation_distinct.pop(distinct_key, None)
        source_oid = rel.bound_at(0).oid
        target_oid = rel.bound_at(1).oid
        sources = self.adjacency.get(root_name)
        if sources is not None:
            targets = sources.get(source_oid)
            if targets is not None:
                remaining = targets.get(target_oid, 0) - 1
                if remaining > 0:
                    targets[target_oid] = remaining
                else:
                    targets.pop(target_oid, None)
                    if not targets:
                        del sources[source_oid]
            if not sources:
                del self.adjacency[root_name]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def participations(self, association_name: str, oid: int, position: int) -> int:
        """O(1) participation count over live normal relationships."""
        self._ensure_fresh()
        return self.participation.get((association_name, oid, position), 0)

    # ------------------------------------------------------------------
    # statistics (cost-model accessors for the query planner)
    # ------------------------------------------------------------------

    def extent_size(self, wanted: "EntityClass", include_specials: bool = True) -> int:
        """Number of live instances of *wanted* without materializing them.

        With ``include_specials`` the generalization rollup is summed;
        exact-class buckets are disjoint so the sum is exact.
        """
        self._ensure_fresh()
        total = len(self.extent.get(wanted.full_name, ()))
        if include_specials:
            for special in wanted.all_specials():
                total += len(self.extent.get(special.full_name, ()))
        return total

    def association_size(self, element_name: str) -> int:
        """Live normal relationships of an association, specials included.

        Maintained as a counter (one increment per kind-chain element on
        index), so the planner reads cardinalities in O(1).
        """
        self._ensure_fresh()
        return self.assoc_counts.get(element_name, 0)

    def name_prefix_count(self, prefix: str) -> int:
        """Number of indexed independent names starting with *prefix*.

        Two bisections — O(log n), no list materialization — since the
        planner re-estimates on every optimize/execute/explain. The
        exclusive upper bound is the successor string of the prefix
        (:func:`prefix_upper_bound`), which handles trailing
        ``U+10FFFF`` code points by stripping them; a prefix of only
        maximum code points has no successor and counts to the end of
        the list.
        """
        self._ensure_fresh()
        low, high = self._prefix_range(prefix)
        return high - low

    def total_objects(self) -> int:
        """All live objects across every extent bucket (O(#classes))."""
        self._ensure_fresh()
        return sum(len(bucket) for bucket in self.extent.values())

    def _merged_value_counts(
        self, wanted: "EntityClass", include_specials: bool
    ) -> dict[tuple, int]:
        merged: dict[tuple, int] = dict(
            self.value_counts.get(wanted.full_name, ())
        )
        if include_specials:
            for special in wanted.all_specials():
                for key, count in self.value_counts.get(
                    special.full_name, {}
                ).items():
                    merged[key] = merged.get(key, 0) + count
        return merged

    def value_histogram(
        self,
        wanted: "EntityClass",
        include_specials: bool = True,
        k: int = TOP_K,
    ) -> tuple[list[tuple[tuple, int]], int, int]:
        """Top-K + remainder view of a class's defined-value distribution.

        Returns ``(top, remainder_count, remainder_distinct)`` where
        *top* holds the K most frequent ``(value key, count)`` pairs
        (count-descending, key-ascending for determinism) and the
        remainder buckets summarize everything else. Full ranked view
        (O(distinct · log distinct)) for introspection and tests; the
        planner's hot path is :meth:`value_frequency`, which answers
        single-value questions without sorting. The maintained
        counters underneath are exact.
        """
        self._ensure_fresh()
        merged = self._merged_value_counts(wanted, include_specials)
        ranked = sorted(merged.items(), key=lambda item: (-item[1], repr(item[0])))
        top = ranked[:k]
        rest = ranked[k:]
        return top, sum(count for __, count in rest), len(rest)

    def value_frequency(
        self,
        wanted: "EntityClass",
        value: object,
        include_specials: bool = True,
        k: int = TOP_K,
    ) -> float:
        """Estimated live objects of *wanted* holding *value*.

        Top-K + remainder semantics: exact for values whose count
        reaches the K-th largest, the remainder average below it, and
        exactly 0.0 for values never seen (the maintained counters can
        tell absence apart from the tail). One hash lookup plus an
        O(distinct · log K) heap pass (no full sort, no merged-dict
        copy in the common case — value-typed classes cannot have
        specializations, so the rollup almost never merges), since the
        planner calls this per Select estimate.
        """
        self._ensure_fresh()
        own = self.value_counts.get(wanted.full_name, {})
        merged = own
        if include_specials:
            for special in wanted.all_specials():
                bucket = self.value_counts.get(special.full_name)
                if bucket:
                    if merged is own:
                        merged = dict(own)
                    for key, count in bucket.items():
                        merged[key] = merged.get(key, 0) + count
        count = merged.get(value_key(value))
        if count is None:
            return 0.0
        if len(merged) <= k:
            return float(count)
        top_counts = nlargest(k, merged.values())
        if count >= top_counts[-1]:
            return float(count)
        remainder_count = sum(merged.values()) - sum(top_counts)
        return remainder_count / (len(merged) - k)

    def defined_count(
        self, wanted: "EntityClass", include_specials: bool = True
    ) -> int:
        """Live objects of *wanted* holding any defined value.

        Sums the class buckets directly — no merged-dict allocation,
        since the planner calls this per Select estimate.
        """
        self._ensure_fresh()
        total = sum(self.value_counts.get(wanted.full_name, {}).values())
        if include_specials:
            for special in wanted.all_specials():
                total += sum(
                    self.value_counts.get(special.full_name, {}).values()
                )
        return total

    def distinct_participants(
        self, element_name: str, position: Optional[int] = None
    ) -> int:
        """Distinct live oids participating in an association element.

        With a *position* the count is exact (maintained alongside the
        participation counters); without one the sum over both
        positions is an upper bound (an object bound at both ends is
        counted twice).
        """
        self._ensure_fresh()
        if position is not None:
            return self.participation_distinct.get((element_name, position), 0)
        return self.participation_distinct.get(
            (element_name, 0), 0
        ) + self.participation_distinct.get((element_name, 1), 0)

    def pattern_influenced(self, obj: "SeedObject") -> bool:
        """True when *obj*'s effective structure may diverge from counters."""
        self._ensure_fresh()
        return bool(obj.inherited_patterns) or (
            self.pattern_incidence.get(obj.oid, 0) > 0
        )

    def normal_edges(self, root_name: str) -> Iterator[tuple[int, int]]:
        """Edges of a family's normal relationships, with multiplicity."""
        self._ensure_fresh()
        return self._normal_edges_fresh(root_name)

    def _normal_edges_fresh(self, root_name: str) -> Iterator[tuple[int, int]]:
        for source_oid, targets in self.adjacency.get(root_name, {}).items():
            for target_oid, count in targets.items():
                for __ in range(count):
                    yield (source_oid, target_oid)

    def successors(self, root_name: str, node: int) -> Iterator[int]:
        """Distinct normal-edge successors of *node* in a family graph."""
        self._ensure_fresh()
        return iter(self.adjacency.get(root_name, {}).get(node, ()))

    def pattern_relationships(self, root_name: str) -> list["SeedRelationship"]:
        """Live pattern-context relationships of a family, by rid order."""
        self._ensure_fresh()
        return [
            self._db._relationships[rid]
            for rid in sorted(self.pattern_rids.get(root_name, ()))
        ]

    def family_relationship_ids(self, root_name: str) -> list[int]:
        """All live relationship ids of a family (normal and pattern)."""
        self._ensure_fresh()
        rids = self.family_rids.get(root_name, set()) | self.pattern_rids.get(
            root_name, set()
        )
        return sorted(rids)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def rebuild(self) -> None:
        """Recompute every structure from the raw records.

        Called after bulk state replacement (version selection, schema
        migration, image load, checkout) where incremental maintenance
        is impossible or family roots may have changed, and by
        :meth:`_ensure_fresh` when a suspended layer is read mid-batch
        (the suspension guard is lifted for the rebuild itself).
        """
        suspended = self._suspended
        self._suspended = False
        try:
            self.extent.clear()
            self.value_counts.clear()
            self.participation.clear()
            self.participation_distinct.clear()
            self.assoc_counts.clear()
            self.adjacency.clear()
            self.family_rids.clear()
            self.pattern_rids.clear()
            self.pattern_incidence.clear()
            self._rel_status.clear()
            self.names = sorted(self._db._name_index)
            for obj in self._db.all_objects_raw():
                if not obj.deleted:
                    self.add_object(obj)
            for rel in self._db.all_relationships_raw():
                if not rel.deleted:
                    self.index_relationship(rel)
        finally:
            self._suspended = suspended
            self._stale = False

    def snapshot(self) -> dict:
        """Deep copy of every structure (for rollback-identity tests)."""
        self._ensure_fresh()
        return {
            "extent": {name: set(oids) for name, oids in self.extent.items()},
            "names": list(self.names),
            "participation": dict(self.participation),
            "participation_distinct": dict(self.participation_distinct),
            "value_counts": {
                name: dict(counts) for name, counts in self.value_counts.items()
            },
            "assoc_counts": dict(self.assoc_counts),
            "adjacency": {
                root: {src: dict(tgts) for src, tgts in sources.items()}
                for root, sources in self.adjacency.items()
            },
            "family_rids": {root: set(r) for root, r in self.family_rids.items()},
            "pattern_rids": {root: set(r) for root, r in self.pattern_rids.items()},
            "pattern_incidence": dict(self.pattern_incidence),
            "rel_status": dict(self._rel_status),
        }

    def verify(self) -> None:
        """Assert the mirror invariant: indexes equal a fresh rebuild."""
        current = self.snapshot()
        reference = IndexLayer(self._db)
        reference.rebuild()
        expected = reference.snapshot()
        for field in expected:
            assert current[field] == expected[field], (
                f"index {field!r} diverged from the raw records:\n"
                f"  maintained: {current[field]!r}\n"
                f"  rebuilt:    {expected[field]!r}"
            )


# ----------------------------------------------------------------------
# brute-force reference implementations (seed semantics, kept verbatim)
# ----------------------------------------------------------------------


def brute_objects(
    db: "SeedDatabase",
    class_name: Optional[str] = None,
    *,
    include_specials: bool = True,
    include_patterns: bool = False,
    independent_only: bool = False,
) -> list["SeedObject"]:
    """The seed's full-scan ``objects()`` — the reference the index must match."""
    wanted = db.schema.entity_class(class_name) if class_name else None
    results = []
    for obj in db.all_objects_raw():
        if obj.deleted:
            continue
        if obj.in_pattern_context and not include_patterns:
            continue
        if independent_only and obj.parent is not None:
            continue
        if wanted is not None:
            if include_specials:
                if not obj.entity_class.is_kind_of(wanted):
                    continue
            elif obj.entity_class is not wanted:
                continue
        results.append(obj)
    return results


def brute_value_counts(db: "SeedDatabase") -> dict[str, dict[tuple, int]]:
    """Full-scan recount of the per-class value histograms.

    The reference :attr:`IndexLayer.value_counts` must equal after any
    sequence of mutations — covers exactly the objects the extents
    hold (live, pattern-context included), defined values only.
    """
    counts: dict[str, dict[tuple, int]] = {}
    for obj in db.all_objects_raw():
        if obj.deleted or obj.value is None:
            continue
        bucket = counts.setdefault(obj.entity_class.full_name, {})
        key = value_key(obj.value)
        bucket[key] = bucket.get(key, 0) + 1
    return counts


def brute_participation_distinct(db: "SeedDatabase") -> dict[tuple[str, int], int]:
    """Full-scan recount of the distinct-participant counters."""
    participants: dict[tuple[str, int], set[int]] = {}
    for rel in db.all_relationships_raw():
        if rel.deleted or rel.in_pattern_context:
            continue
        for element in rel.association.kind_chain():
            for position in (0, 1):
                participants.setdefault((element.name, position), set()).add(
                    rel.bound_at(position).oid
                )
    return {key: len(oids) for key, oids in participants.items()}


def brute_relationships(
    db: "SeedDatabase",
    association: Optional[str] = None,
    *,
    include_specials: bool = True,
    include_patterns: bool = False,
) -> list["SeedRelationship"]:
    """The seed's full-scan ``relationships()`` — reference implementation."""
    wanted = db.schema.association(association) if association else None
    results = []
    for rel in db.all_relationships_raw():
        if rel.deleted:
            continue
        if rel.in_pattern_context and not include_patterns:
            continue
        if wanted is not None:
            if include_specials:
                if not rel.association.is_kind_of(wanted):
                    continue
            elif rel.association is not wanted:
                continue
        results.append(rel)
    return results
