"""Maintained secondary indexes: every hot path becomes sublinear.

The seed answered class-extent queries, participation counts, name
lookups, and ACYCLIC checks by scanning all objects or all
relationships — O(database) work per update or query. This layer keeps
four secondary structures incrementally up to date so the same answers
cost O(answer) or O(1):

``extent``
    class full-name → set of live oids classified exactly in that
    class. A query for class ``C`` unions the sets of ``C`` and its
    transitive specializations (generalization rollup), so extents are
    read in O(|extent|). The sets include pattern-context objects;
    visibility filtering stays a query-time concern because marking a
    pattern flips the context of a whole sub-tree at once.

``names``
    sorted list of independent-object names, mirroring the database's
    ``_name_index`` keys exactly. Prefix retrieval bisects instead of
    scanning.

``participation``
    ``(association name, oid, position) → count`` over live
    **normal** (non-pattern-context) relationships. Each relationship
    contributes one count per element of its association's kind chain,
    so ``count_participations`` is a dict lookup. Virtual (pattern-
    inherited) participations are not counted here; the pattern manager
    falls back to enumeration for the few objects with pattern
    influence (tracked by ``pattern_incidence``).

``adjacency`` / ``family_rids`` / ``pattern_rids``
    per association-family edge multigraph (src oid → tgt oid →
    multiplicity) plus the sets of live normal and pattern relationship
    ids per family. ACYCLIC validation walks this graph instead of
    re-deriving it from a full relationship scan, and the incremental
    check on insert only explores reachability from the new edge's
    target.

Invariants (checked by :meth:`IndexLayer.verify` and the equivalence
tests in ``tests/test_indexes.py``):

1. **Mirror invariant** — after any committed operation, every
   structure equals what :meth:`rebuild` would compute from the raw
   records. Mutation paths in :class:`~repro.core.database.SeedDatabase`
   update the indexes in the same code paths that update the records.
2. **Rollback invariant** — every index mutation inside a transaction
   is paired with an undo closure in the transaction's undo log, so a
   rolled-back transaction leaves all structures byte-identical to the
   pre-transaction state.
3. **Status invariant** — each live relationship is indexed under
   exactly one status, ``normal`` or ``pattern`` (cached in
   ``_rel_status``); pattern-flag changes re-index through
   :meth:`refresh_relationship` / :meth:`set_relationship_status`.
4. **Fallback invariant** — indexed fast paths are only taken when
   they provably agree with the brute-force scan; pattern-influenced
   objects (inherited patterns or incident pattern relationships) use
   the scan. The brute-force reference implementations live in this
   module (:func:`brute_objects`, :func:`brute_relationships`) and in
   the pattern manager so tests can compare answers forever.

Bulk loaders that bypass the operational interface (version restore,
schema migration, image deserialization, multi-user checkout) call
:meth:`rebuild`.

Deferred maintenance (PR 4): the bulk write path
(:meth:`repro.core.database.SeedDatabase.bulk`) calls :meth:`suspend`
before a batch and :meth:`resume` after it. While suspended, every
incremental mutator is a no-op that only marks the layer *stale*; the
batch then pays **one** :meth:`rebuild` instead of per-item updates.
Query entry points stay correct throughout: they call
:meth:`_ensure_fresh`, which rebuilds on demand when a stale layer is
read mid-batch — so a read inside a bulk batch sees every batch
mutation applied so far, at the cost of one rebuild per
write-then-read boundary.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.database import SeedDatabase
    from repro.core.objects import SeedObject
    from repro.core.relationships import SeedRelationship
    from repro.core.schema.entity_class import EntityClass

__all__ = ["IndexLayer", "brute_objects", "brute_relationships"]

#: relationship index status values
NORMAL = "normal"
PATTERN = "pattern"


class IndexLayer:
    """Incrementally maintained secondary indexes for one database."""

    def __init__(self, database: "SeedDatabase") -> None:
        self._db = database
        #: class full-name -> set of live oids of exactly that class
        self.extent: dict[str, set[int]] = {}
        #: sorted mirror of the database's independent-name index keys
        self.names: list[str] = []
        #: (association name, oid, position) -> live normal-rel count
        self.participation: dict[tuple[str, int, int], int] = {}
        #: association element name -> live normal-rel count (incl. specials)
        self.assoc_counts: dict[str, int] = {}
        #: family root name -> src oid -> tgt oid -> edge multiplicity
        self.adjacency: dict[str, dict[int, dict[int, int]]] = {}
        #: family root name -> live normal relationship ids
        self.family_rids: dict[str, set[int]] = {}
        #: family root name -> live pattern-context relationship ids
        self.pattern_rids: dict[str, set[int]] = {}
        #: oid -> number of live pattern-context relationships touching it
        self.pattern_incidence: dict[int, int] = {}
        #: rid -> status the relationship is currently indexed under
        self._rel_status: dict[int, str] = {}
        #: True while a bulk batch defers maintenance (see suspend())
        self._suspended = False
        #: True when mutations happened while suspended (rebuild needed)
        self._stale = False

    # ------------------------------------------------------------------
    # deferred maintenance (the bulk write path)
    # ------------------------------------------------------------------

    def suspend(self) -> None:
        """Defer all incremental maintenance until :meth:`resume`.

        Mutators become no-ops that only mark the layer stale; queries
        transparently :meth:`rebuild` on first read of a stale layer.
        """
        self._suspended = True

    def resume(self) -> None:
        """End deferred maintenance; one rebuild settles all batched work."""
        self._suspended = False
        if self._stale:
            self.rebuild()

    def mark_stale(self) -> None:
        """Record that raw-lane mutations bypassed the mutators.

        ``bulk_load`` constructs records directly (no per-item mutator
        calls, so nothing else would flag the divergence); the next
        read or :meth:`resume` then rebuilds.
        """
        self._stale = True

    def cancel_suspension(self) -> None:
        """Clear suspension without refreshing (bulk rollback rebuilds)."""
        self._suspended = False
        self._stale = False

    def _ensure_fresh(self) -> None:
        if self._stale:
            self.rebuild()

    # ------------------------------------------------------------------
    # object extent
    # ------------------------------------------------------------------

    def add_object(self, obj: "SeedObject") -> None:
        """Enter a live object into its class extent."""
        if self._suspended:
            self._stale = True
            return
        self.extent.setdefault(obj.entity_class.full_name, set()).add(obj.oid)

    def remove_object(self, obj: "SeedObject") -> None:
        """Remove an object (tombstoned or rolled back) from its extent."""
        if self._suspended:
            self._stale = True
            return
        bucket = self.extent.get(obj.entity_class.full_name)
        if bucket is not None:
            bucket.discard(obj.oid)
            if not bucket:
                del self.extent[obj.entity_class.full_name]

    def move_object(
        self, obj: "SeedObject", old_class: "EntityClass", new_class: "EntityClass"
    ) -> None:
        """Re-file an object after re-classification."""
        if self._suspended:
            self._stale = True
            return
        bucket = self.extent.get(old_class.full_name)
        if bucket is not None:
            bucket.discard(obj.oid)
            if not bucket:
                del self.extent[old_class.full_name]
        self.extent.setdefault(new_class.full_name, set()).add(obj.oid)

    def extent_oids(
        self, wanted: "EntityClass", include_specials: bool = True
    ) -> list[int]:
        """Sorted oids of the extent of *wanted* (rolled up when asked).

        Sorting by oid reproduces creation order, matching the order the
        seed's full scan produced.
        """
        self._ensure_fresh()
        if not include_specials:
            return sorted(self.extent.get(wanted.full_name, ()))
        result: set[int] = set()
        result.update(self.extent.get(wanted.full_name, ()))
        for special in wanted.all_specials():
            result.update(self.extent.get(special.full_name, ()))
        return sorted(result)

    # ------------------------------------------------------------------
    # sorted name index
    # ------------------------------------------------------------------

    def add_name(self, name: str) -> None:
        """Mirror an insertion into the database's name index."""
        if self._suspended:
            self._stale = True
            return
        insort(self.names, name)

    def remove_name(self, name: str) -> None:
        """Mirror a removal from the database's name index."""
        if self._suspended:
            self._stale = True
            return
        position = bisect_left(self.names, name)
        if position < len(self.names) and self.names[position] == name:
            del self.names[position]

    def names_with_prefix(self, prefix: str) -> list[str]:
        """All indexed names starting with *prefix*, in sorted order."""
        self._ensure_fresh()
        position = bisect_left(self.names, prefix)
        result: list[str] = []
        while position < len(self.names) and self.names[position].startswith(prefix):
            result.append(self.names[position])
            position += 1
        return result

    # ------------------------------------------------------------------
    # relationship indexes
    # ------------------------------------------------------------------

    @staticmethod
    def _status_of(rel: "SeedRelationship") -> str:
        return PATTERN if rel.in_pattern_context else NORMAL

    def index_relationship(self, rel: "SeedRelationship") -> None:
        """Enter a live relationship under its current pattern status."""
        if self._suspended:
            self._stale = True
            return
        self._index_as(rel, self._status_of(rel))

    def unindex_relationship(self, rel: "SeedRelationship") -> None:
        """Remove a relationship using the status it was indexed under.

        The cached status, not the current flags, drives removal so the
        call stays correct while flags are mid-rollback.
        """
        if self._suspended:
            self._stale = True
            return
        status = self._rel_status.pop(rel.rid, None)
        if status is None:  # pragma: no cover - defensive
            return
        self._unindex_as(rel, status)

    def refresh_relationship(
        self, rel: "SeedRelationship"
    ) -> Optional[tuple[str, str]]:
        """Re-index after a pattern-flag change; returns (old, new) or None."""
        if self._suspended:
            self._stale = True
            return None
        old_status = self._rel_status.get(rel.rid)
        new_status = self._status_of(rel)
        if old_status == new_status or old_status is None:
            return None
        self.set_relationship_status(rel, new_status)
        return (old_status, new_status)

    def set_relationship_status(self, rel: "SeedRelationship", status: str) -> None:
        """Force a relationship's indexed status (used by undo closures)."""
        if self._suspended:  # pragma: no cover - undo never runs in bulk
            self._stale = True
            return
        current = self._rel_status.pop(rel.rid, None)
        if current is not None:
            self._unindex_as(rel, current)
        self._index_as(rel, status)

    def _index_as(self, rel: "SeedRelationship", status: str) -> None:
        self._rel_status[rel.rid] = status
        root_name = rel.association.family_root().name
        if status == PATTERN:
            self.pattern_rids.setdefault(root_name, set()).add(rel.rid)
            for endpoint in rel.bound_objects():
                self.pattern_incidence[endpoint.oid] = (
                    self.pattern_incidence.get(endpoint.oid, 0) + 1
                )
            return
        self.family_rids.setdefault(root_name, set()).add(rel.rid)
        for element in rel.association.kind_chain():
            self.assoc_counts[element.name] = self.assoc_counts.get(element.name, 0) + 1
            for position in (0, 1):
                key = (element.name, rel.bound_at(position).oid, position)
                self.participation[key] = self.participation.get(key, 0) + 1
        source_oid = rel.bound_at(0).oid
        target_oid = rel.bound_at(1).oid
        targets = self.adjacency.setdefault(root_name, {}).setdefault(source_oid, {})
        targets[target_oid] = targets.get(target_oid, 0) + 1

    def _unindex_as(self, rel: "SeedRelationship", status: str) -> None:
        root_name = rel.association.family_root().name
        if status == PATTERN:
            rids = self.pattern_rids.get(root_name)
            if rids is not None:
                rids.discard(rel.rid)
                if not rids:
                    del self.pattern_rids[root_name]
            for endpoint in rel.bound_objects():
                remaining = self.pattern_incidence.get(endpoint.oid, 0) - 1
                if remaining > 0:
                    self.pattern_incidence[endpoint.oid] = remaining
                else:
                    self.pattern_incidence.pop(endpoint.oid, None)
            return
        rids = self.family_rids.get(root_name)
        if rids is not None:
            rids.discard(rel.rid)
            if not rids:
                del self.family_rids[root_name]
        for element in rel.association.kind_chain():
            left = self.assoc_counts.get(element.name, 0) - 1
            if left > 0:
                self.assoc_counts[element.name] = left
            else:
                self.assoc_counts.pop(element.name, None)
            for position in (0, 1):
                key = (element.name, rel.bound_at(position).oid, position)
                remaining = self.participation.get(key, 0) - 1
                if remaining > 0:
                    self.participation[key] = remaining
                else:
                    self.participation.pop(key, None)
        source_oid = rel.bound_at(0).oid
        target_oid = rel.bound_at(1).oid
        sources = self.adjacency.get(root_name)
        if sources is not None:
            targets = sources.get(source_oid)
            if targets is not None:
                remaining = targets.get(target_oid, 0) - 1
                if remaining > 0:
                    targets[target_oid] = remaining
                else:
                    targets.pop(target_oid, None)
                    if not targets:
                        del sources[source_oid]
            if not sources:
                del self.adjacency[root_name]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def participations(self, association_name: str, oid: int, position: int) -> int:
        """O(1) participation count over live normal relationships."""
        self._ensure_fresh()
        return self.participation.get((association_name, oid, position), 0)

    # ------------------------------------------------------------------
    # statistics (cost-model accessors for the query planner)
    # ------------------------------------------------------------------

    def extent_size(self, wanted: "EntityClass", include_specials: bool = True) -> int:
        """Number of live instances of *wanted* without materializing them.

        With ``include_specials`` the generalization rollup is summed;
        exact-class buckets are disjoint so the sum is exact.
        """
        self._ensure_fresh()
        total = len(self.extent.get(wanted.full_name, ()))
        if include_specials:
            for special in wanted.all_specials():
                total += len(self.extent.get(special.full_name, ()))
        return total

    def association_size(self, element_name: str) -> int:
        """Live normal relationships of an association, specials included.

        Maintained as a counter (one increment per kind-chain element on
        index), so the planner reads cardinalities in O(1).
        """
        self._ensure_fresh()
        return self.assoc_counts.get(element_name, 0)

    def name_prefix_count(self, prefix: str) -> int:
        """Number of indexed independent names starting with *prefix*.

        Two bisections — O(log n), no list materialization — since the
        planner re-estimates on every optimize/execute/explain. The
        exclusive upper bound is the successor string of the prefix.
        """
        self._ensure_fresh()
        if not prefix:
            return len(self.names)
        last = prefix[-1]
        if ord(last) >= 0x10FFFF:  # pragma: no cover - no successor char
            return len(self.names_with_prefix(prefix))
        low = bisect_left(self.names, prefix)
        high = bisect_left(self.names, prefix[:-1] + chr(ord(last) + 1), lo=low)
        return high - low

    def pattern_influenced(self, obj: "SeedObject") -> bool:
        """True when *obj*'s effective structure may diverge from counters."""
        self._ensure_fresh()
        return bool(obj.inherited_patterns) or (
            self.pattern_incidence.get(obj.oid, 0) > 0
        )

    def normal_edges(self, root_name: str) -> Iterator[tuple[int, int]]:
        """Edges of a family's normal relationships, with multiplicity."""
        self._ensure_fresh()
        return self._normal_edges_fresh(root_name)

    def _normal_edges_fresh(self, root_name: str) -> Iterator[tuple[int, int]]:
        for source_oid, targets in self.adjacency.get(root_name, {}).items():
            for target_oid, count in targets.items():
                for __ in range(count):
                    yield (source_oid, target_oid)

    def successors(self, root_name: str, node: int) -> Iterator[int]:
        """Distinct normal-edge successors of *node* in a family graph."""
        self._ensure_fresh()
        return iter(self.adjacency.get(root_name, {}).get(node, ()))

    def pattern_relationships(self, root_name: str) -> list["SeedRelationship"]:
        """Live pattern-context relationships of a family, by rid order."""
        self._ensure_fresh()
        return [
            self._db._relationships[rid]
            for rid in sorted(self.pattern_rids.get(root_name, ()))
        ]

    def family_relationship_ids(self, root_name: str) -> list[int]:
        """All live relationship ids of a family (normal and pattern)."""
        self._ensure_fresh()
        rids = self.family_rids.get(root_name, set()) | self.pattern_rids.get(
            root_name, set()
        )
        return sorted(rids)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def rebuild(self) -> None:
        """Recompute every structure from the raw records.

        Called after bulk state replacement (version selection, schema
        migration, image load, checkout) where incremental maintenance
        is impossible or family roots may have changed, and by
        :meth:`_ensure_fresh` when a suspended layer is read mid-batch
        (the suspension guard is lifted for the rebuild itself).
        """
        suspended = self._suspended
        self._suspended = False
        try:
            self.extent.clear()
            self.participation.clear()
            self.assoc_counts.clear()
            self.adjacency.clear()
            self.family_rids.clear()
            self.pattern_rids.clear()
            self.pattern_incidence.clear()
            self._rel_status.clear()
            self.names = sorted(self._db._name_index)
            for obj in self._db.all_objects_raw():
                if not obj.deleted:
                    self.add_object(obj)
            for rel in self._db.all_relationships_raw():
                if not rel.deleted:
                    self.index_relationship(rel)
        finally:
            self._suspended = suspended
            self._stale = False

    def snapshot(self) -> dict:
        """Deep copy of every structure (for rollback-identity tests)."""
        self._ensure_fresh()
        return {
            "extent": {name: set(oids) for name, oids in self.extent.items()},
            "names": list(self.names),
            "participation": dict(self.participation),
            "assoc_counts": dict(self.assoc_counts),
            "adjacency": {
                root: {src: dict(tgts) for src, tgts in sources.items()}
                for root, sources in self.adjacency.items()
            },
            "family_rids": {root: set(r) for root, r in self.family_rids.items()},
            "pattern_rids": {root: set(r) for root, r in self.pattern_rids.items()},
            "pattern_incidence": dict(self.pattern_incidence),
            "rel_status": dict(self._rel_status),
        }

    def verify(self) -> None:
        """Assert the mirror invariant: indexes equal a fresh rebuild."""
        current = self.snapshot()
        reference = IndexLayer(self._db)
        reference.rebuild()
        expected = reference.snapshot()
        for field in expected:
            assert current[field] == expected[field], (
                f"index {field!r} diverged from the raw records:\n"
                f"  maintained: {current[field]!r}\n"
                f"  rebuilt:    {expected[field]!r}"
            )


# ----------------------------------------------------------------------
# brute-force reference implementations (seed semantics, kept verbatim)
# ----------------------------------------------------------------------


def brute_objects(
    db: "SeedDatabase",
    class_name: Optional[str] = None,
    *,
    include_specials: bool = True,
    include_patterns: bool = False,
    independent_only: bool = False,
) -> list["SeedObject"]:
    """The seed's full-scan ``objects()`` — the reference the index must match."""
    wanted = db.schema.entity_class(class_name) if class_name else None
    results = []
    for obj in db.all_objects_raw():
        if obj.deleted:
            continue
        if obj.in_pattern_context and not include_patterns:
            continue
        if independent_only and obj.parent is not None:
            continue
        if wanted is not None:
            if include_specials:
                if not obj.entity_class.is_kind_of(wanted):
                    continue
            elif obj.entity_class is not wanted:
                continue
        results.append(obj)
    return results


def brute_relationships(
    db: "SeedDatabase",
    association: Optional[str] = None,
    *,
    include_specials: bool = True,
    include_patterns: bool = False,
) -> list["SeedRelationship"]:
    """The seed's full-scan ``relationships()`` — reference implementation."""
    wanted = db.schema.association(association) if association else None
    results = []
    for rel in db.all_relationships_raw():
        if rel.deleted:
            continue
        if rel.in_pattern_context and not include_patterns:
            continue
        if wanted is not None:
            if include_specials:
                if not rel.association.is_kind_of(wanted):
                    continue
            elif rel.association is not wanted:
                continue
        results.append(rel)
    return results
