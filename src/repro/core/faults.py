"""Deterministic fault injection: named failpoints and seeded plans.

Crash-safety code is only trustworthy if its failure paths can be
*exercised*. This module provides the machinery: production code fires
named **failpoints** at the moments where a crash or I/O error would
matter (``recordfile.append.pre_fsync``, ``recordfile.rewrite.replace``,
``checkin.apply.mid``, ``txn.journal.pre_append``,
``journal.compact.rewrite``, ...), and a test arms a :class:`FaultPlan`
that maps failpoint names to faults:

* **I/O errors** — :meth:`FaultPlan.fail_io` raises ``OSError`` with a
  chosen errno (``EIO``, ``ENOSPC``) at the Nth hit of a point;
* **torn writes** — :meth:`FaultPlan.torn_write` truncates the bytes
  about to be written at byte *k*, lets the caller persist exactly that
  prefix, then crashes (models power loss mid-``write``);
* **simulated crashes** — :meth:`FaultPlan.crash` raises
  :class:`SimulatedCrash` so the process state after the point is never
  reached (models power loss between two operations).

Determinism: a plan never consults the wall clock or global randomness.
Faults trigger on exact per-point hit counts, and the plan carries a
seeded ``random.Random`` (:attr:`FaultPlan.rng`) so tests that *derive*
fault placements (truncation offsets, byte flips) stay reproducible.

Zero overhead when disarmed: the module-global :data:`_PLAN` is ``None``
unless a plan is armed, and every instrumented call site guards with
``if faults._PLAN is not None`` (or :func:`armed`) — the disarmed cost
is one global load per failpoint, nothing else. Only one plan can be
armed at a time (arming is process-global, like the failure modes it
simulates).

Usage::

    plan = FaultPlan(seed=7)
    plan.fail_io("recordfile.append.pre_fsync", errno_code=errno.EIO)
    with plan:                     # armed for the duration
        journal.checkpoint()       # raises OSError(EIO) at the point
    assert plan.triggered          # [(point, kind, hit_index)]
"""

from __future__ import annotations

import errno as _errno
import os
import random
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "FaultPlan",
    "SimulatedCrash",
    "TornWrite",
    "armed",
    "arm",
    "disarm",
    "fire",
]

#: the armed plan; ``None`` means every failpoint is a near-no-op
_PLAN: Optional["FaultPlan"] = None


class SimulatedCrash(RuntimeError):
    """An injected crash: the code after the failpoint never runs.

    Deliberately *not* a :class:`~repro.core.errors.SeedError` — a real
    crash is not a library error, and recovery code must not be able to
    swallow it with a broad ``except SeedError``.
    """


class TornWrite(Exception):
    """Internal signal: persist :attr:`data` (a prefix), then crash.

    Raised by :func:`fire` at write-site failpoints; the call site
    writes ``torn.data`` in place of the full buffer, makes it durable,
    and raises :class:`SimulatedCrash`. Carrying the truncated bytes in
    the exception keeps the fault logic out of the write path proper.
    """

    def __init__(self, data: bytes) -> None:
        super().__init__(f"torn write: {len(data)} bytes survive")
        self.data = data


@dataclass
class _Fault:
    """One scheduled fault at one failpoint."""

    kind: str  # "errno" | "torn" | "crash"
    at: int  # 1-based hit index of the point that triggers it
    errno_code: int = 0
    keep: int = 0  # torn writes: surviving prefix length


@dataclass
class FaultPlan:
    """A deterministic, seeded schedule of faults for named failpoints.

    The plan is also a context manager; entering arms it process-wide,
    leaving disarms (and re-raising is never suppressed). :attr:`hits`
    counts every armed hit per point — tests assert coverage with it —
    and :attr:`triggered` logs ``(point, kind, hit)`` for every fault
    that actually fired.
    """

    seed: int = 0
    _faults: dict[str, list[_Fault]] = field(default_factory=dict)
    hits: dict[str, int] = field(default_factory=dict)
    triggered: list[tuple[str, str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        #: seeded generator for tests that derive fault placements
        self.rng = random.Random(self.seed)

    # -- scheduling ---------------------------------------------------------

    def fail_io(
        self, point: str, *, errno_code: int = _errno.EIO, at: int = 1
    ) -> "FaultPlan":
        """Raise ``OSError(errno_code)`` at the *at*-th hit of *point*."""
        self._faults.setdefault(point, []).append(
            _Fault("errno", at, errno_code=errno_code)
        )
        return self

    def torn_write(self, point: str, *, keep: int, at: int = 1) -> "FaultPlan":
        """Truncate the write at byte *keep*, persist it, then crash."""
        self._faults.setdefault(point, []).append(_Fault("torn", at, keep=keep))
        return self

    def crash(self, point: str, *, at: int = 1) -> "FaultPlan":
        """Raise :class:`SimulatedCrash` at the *at*-th hit of *point*."""
        self._faults.setdefault(point, []).append(_Fault("crash", at))
        return self

    # -- firing -------------------------------------------------------------

    def trigger(self, point: str, data: Optional[bytes]) -> Optional[bytes]:
        """Record a hit of *point* and raise/mutate per the schedule."""
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        for fault in self._faults.get(point, ()):
            if fault.at != hit:
                continue
            self.triggered.append((point, fault.kind, hit))
            if fault.kind == "errno":
                raise OSError(
                    fault.errno_code,
                    f"{os.strerror(fault.errno_code)} [injected at {point}]",
                )
            if fault.kind == "crash":
                raise SimulatedCrash(f"injected crash at {point}")
            if fault.kind == "torn":
                raise TornWrite((data or b"")[: fault.keep])
        return data

    # -- arming -------------------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        arm(self)
        return self

    def __exit__(self, *exc_info) -> None:
        disarm()


def armed() -> bool:
    """True while a plan is armed (failpoints are live)."""
    return _PLAN is not None


def arm(plan: FaultPlan) -> None:
    """Arm *plan* process-wide; only one plan can be armed at a time."""
    global _PLAN
    if _PLAN is not None:
        raise RuntimeError("a fault plan is already armed")
    _PLAN = plan


def disarm() -> None:
    """Disarm the active plan (idempotent)."""
    global _PLAN
    _PLAN = None


def fire(point: str, data: Optional[bytes] = None) -> Optional[bytes]:
    """Hit failpoint *point*; returns *data* (possibly to be replaced).

    No-op returning *data* unchanged when no plan is armed. Call sites
    on hot paths guard with ``if faults._PLAN is not None`` so the
    disarmed cost is a single global load.
    """
    plan = _PLAN
    if plan is None:
        return data
    return plan.trigger(point, data)
