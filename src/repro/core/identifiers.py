"""Names and identifiers.

SEED composes the name of a dependent object from the name of its parent
and its role in the context of the parent (paper, explanation of figure
1): ``Alarms.Text.Body.Keywords[1]`` is the second ``Keywords`` sub-object
of the ``Body`` of the (first) ``Text`` of the independent object
``Alarms``.

This module provides:

* :func:`is_simple_name` / :func:`check_simple_name` — validation of a
  single name component (class names, role names, object names);
* :class:`NamePart` — one component of a dotted name, with an optional
  integer index;
* :class:`DottedName` — a parsed dotted name with index suffixes,
  supporting composition, parsing, parent/child navigation and ordering.

Dotted names are pure values (immutable, hashable); the instance layer
maps them to live objects.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable, Iterator, Optional

from repro.core.errors import IdentifierError

__all__ = [
    "is_simple_name",
    "check_simple_name",
    "NamePart",
    "DottedName",
]

_SIMPLE_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_PART_RE = re.compile(r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)(?:\[(?P<index>\d+)\])?$")


def is_simple_name(text: str) -> bool:
    """Return True if *text* is a legal single name component.

    Legal components match ``[A-Za-z_][A-Za-z0-9_]*`` — the identifier
    shape used throughout the paper's examples (``Alarms``,
    ``AlarmHandler``, ``Keywords``).
    """
    return isinstance(text, str) and bool(_SIMPLE_NAME_RE.match(text))


def check_simple_name(text: str, what: str = "name") -> str:
    """Validate *text* as a simple name and return it.

    Raises :class:`IdentifierError` with a message mentioning *what*
    (e.g. ``"class name"``) when the text is not a legal component.
    """
    if not is_simple_name(text):
        raise IdentifierError(f"illegal {what}: {text!r}")
    return text


@total_ordering
@dataclass(frozen=True)
class NamePart:
    """One component of a dotted name: a simple name plus optional index.

    The index distinguishes siblings of the same dependent class when
    the class cardinality allows several (``Keywords[0]``,
    ``Keywords[1]`` in figure 1). ``index`` is ``None`` for unindexed
    components; for ordering purposes ``None`` sorts before ``0``.
    """

    name: str
    index: Optional[int] = None

    def __post_init__(self) -> None:
        check_simple_name(self.name, "name part")
        if self.index is not None and (not isinstance(self.index, int) or self.index < 0):
            raise IdentifierError(f"illegal index {self.index!r} in name part {self.name!r}")

    def __lt__(self, other: "NamePart") -> bool:
        if not isinstance(other, NamePart):
            return NotImplemented
        return self._key() < other._key()

    def _key(self) -> tuple:
        return (self.name, -1 if self.index is None else self.index)

    @classmethod
    def parse(cls, text: str) -> "NamePart":
        """Parse ``"Keywords[1]"`` or ``"Body"`` into a NamePart."""
        match = _PART_RE.match(text)
        if not match:
            raise IdentifierError(f"illegal name part: {text!r}")
        index = match.group("index")
        return cls(match.group("name"), int(index) if index is not None else None)

    def __str__(self) -> str:
        if self.index is None:
            return self.name
        return f"{self.name}[{self.index}]"


@dataclass(frozen=True)
class DottedName:
    """A full composed name such as ``Alarms.Text.Body.Keywords[1]``.

    The first part names an independent object; each further part names
    the role (dependent class) of a sub-object within its parent, with
    an index when several siblings of that class exist.
    """

    parts: tuple[NamePart, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise IdentifierError("a dotted name needs at least one part")
        for part in self.parts:
            if not isinstance(part, NamePart):
                raise IdentifierError(f"not a NamePart: {part!r}")

    @classmethod
    def parse(cls, text: str) -> "DottedName":
        """Parse a dotted textual name into its parts.

        >>> DottedName.parse("Alarms.Text.Body.Keywords[1]").depth
        4
        """
        if not isinstance(text, str) or not text:
            raise IdentifierError(f"illegal dotted name: {text!r}")
        return cls(tuple(NamePart.parse(chunk) for chunk in text.split(".")))

    @classmethod
    def of(cls, *components: object) -> "DottedName":
        """Build a name from loose components.

        Components may be strings (parsed as single parts, index suffix
        allowed), :class:`NamePart` instances, or ``(name, index)``
        tuples.
        """
        parts: list[NamePart] = []
        for component in components:
            if isinstance(component, NamePart):
                parts.append(component)
            elif isinstance(component, str):
                parts.append(NamePart.parse(component))
            elif isinstance(component, tuple) and len(component) == 2:
                parts.append(NamePart(component[0], component[1]))
            else:
                raise IdentifierError(f"cannot build name component from {component!r}")
        return cls(tuple(parts))

    # -- structure -------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of parts; 1 for the name of an independent object."""
        return len(self.parts)

    @property
    def is_independent(self) -> bool:
        """True when the name refers to an independent (top-level) object."""
        return len(self.parts) == 1

    @property
    def root(self) -> NamePart:
        """The component naming the independent ancestor object."""
        return self.parts[0]

    @property
    def leaf(self) -> NamePart:
        """The last component (the object's own role and index)."""
        return self.parts[-1]

    @property
    def parent(self) -> Optional["DottedName"]:
        """The name of the parent object, or None for independent names."""
        if len(self.parts) == 1:
            return None
        return DottedName(self.parts[:-1])

    def child(self, name: str, index: Optional[int] = None) -> "DottedName":
        """Compose the name of a sub-object in role *name* (with *index*)."""
        return DottedName(self.parts + (NamePart(name, index),))

    def with_root(self, root: NamePart | str) -> "DottedName":
        """Return this name re-rooted at *root* (same dependent path)."""
        if isinstance(root, str):
            root = NamePart.parse(root)
        return DottedName((root,) + self.parts[1:])

    def is_ancestor_of(self, other: "DottedName") -> bool:
        """True when *other* names a (strict) descendant of this object."""
        return (
            len(other.parts) > len(self.parts)
            and other.parts[: len(self.parts)] == self.parts
        )

    def role_path(self) -> tuple[str, ...]:
        """The dependent-class names along the path, ignoring indices.

        For ``Alarms.Text.Body.Keywords[1]`` this is
        ``("Text", "Body", "Keywords")`` — the path used to look the
        corresponding dependent classes up in the schema.
        """
        return tuple(part.name for part in self.parts[1:])

    # -- protocol --------------------------------------------------------

    def __iter__(self) -> Iterator[NamePart]:
        return iter(self.parts)

    def __len__(self) -> int:
        return len(self.parts)

    def __lt__(self, other: "DottedName") -> bool:
        if not isinstance(other, DottedName):
            return NotImplemented
        return tuple(p._key() for p in self.parts) < tuple(p._key() for p in other.parts)

    def __str__(self) -> str:
        return ".".join(str(part) for part in self.parts)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"DottedName({str(self)!r})"


def join_names(parts: Iterable[str]) -> str:
    """Join textual parts into a dotted name string, validating each."""
    return str(DottedName.of(*parts))
