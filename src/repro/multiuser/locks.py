"""Write locks for the two-level multi-user architecture.

"Data that has been copied to a client for update has a write lock in
the central database." The lock table is item-granular: every object or
relationship checked out for update is locked by exactly one owner;
conflicting check-outs fail fast with :class:`~repro.core.errors.
LockError` rather than blocking (the paper sketches no queueing —
bounded waiting lives client-side, in
:class:`~repro.multiuser.client.RetryPolicy`).

Owners are opaque strings. Since PR 7 the server keys locks by **session
token** (one per ``connect``), never by the reusable client id — a stale
pre-disconnect handle therefore cannot touch, or release by checking in,
the locks of the session that reconnected under the same client id (see
:mod:`repro.multiuser.sessions`).

Lease semantics (multi-user liveness)
-------------------------------------

A crashed client must not hold its write locks forever. When the table
is built with ``lease_seconds`` (or an acquisition passes an explicit
lease), every lock carries an expiry on the injectable ``clock``:

* an **expired** lock is invisible — ``holder``/``is_locked`` report it
  free, and a conflicting :meth:`LockTable.acquire` *reclaims* it
  (purged, counted in :attr:`LockTable.reclaimed`);
* a live client keeps its locks alive by touching them with
  :meth:`LockTable.renew` (check-in does not renew — a client that lets
  its lease lapse must expect to lose the race);
* a client whose lease expired can no longer check in changes to the
  reclaimed items: the server's held-lock validation no longer sees the
  lock, so the stale check-in is rejected rather than clobbering
  whoever reclaimed it.

The ``clock`` is any ``() -> float`` (default ``time.monotonic``);
tests inject a fake clock so lease expiry is deterministic — no
wall-clock sleeps.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional

from repro.core.errors import LockError
from repro.core.versions.store import ItemKey

__all__ = ["LockTable"]

#: "use the table default" sentinel for per-acquisition leases
_DEFAULT = object()


class LockTable:
    """Item-granular write locks, keyed like the version store."""

    def __init__(
        self,
        *,
        lease_seconds: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        owner_alias: Optional[Callable[[str], str]] = None,
    ) -> None:
        #: key -> (holder, expiry on the clock, or None = no lease)
        self._locks: dict[ItemKey, tuple[str, Optional[float]]] = {}
        self._lease = lease_seconds
        self._clock = clock if clock is not None else time.monotonic
        #: renders an owner for error messages (the server maps session
        #: tokens back to client ids so conflicts name the *user*, not
        #: the opaque credential); identity when absent
        self._owner_alias = owner_alias
        #: expired locks reclaimed by later acquisitions or purges
        self.reclaimed = 0

    def _alias(self, owner: str) -> str:
        if self._owner_alias is None:
            return owner
        return self._owner_alias(owner)

    # -- lease plumbing -----------------------------------------------------

    def _expiry(self, lease) -> Optional[float]:
        seconds = self._lease if lease is _DEFAULT else lease
        return None if seconds is None else self._clock() + seconds

    def default_expiry(self) -> Optional[float]:
        """Expiry on this table's clock for a lease granted now.

        ``None`` when the table has no default lease. The server stamps
        check-out *standing* with the same expiry as the locks it grants
        — so a client whose lease lapsed loses not only its locks but
        also the right to inject create-only packages.
        """
        return self._expiry(_DEFAULT)

    def is_expired(self, expiry: Optional[float]) -> bool:
        """True when *expiry* (from :meth:`default_expiry`) has passed."""
        return expiry is not None and expiry <= self._clock()

    def _live_holder(self, key: ItemKey) -> Optional[str]:
        """The holder of *key* if the lock has not expired, else None."""
        entry = self._locks.get(key)
        if entry is None:
            return None
        holder, expires = entry
        if expires is not None and expires <= self._clock():
            return None
        return holder

    def purge_expired(self) -> list[ItemKey]:
        """Drop every expired lock; returns the reclaimed keys."""
        now = self._clock()
        expired = [
            key
            for key, (__, expires) in self._locks.items()
            if expires is not None and expires <= now
        ]
        for key in expired:
            del self._locks[key]
        self.reclaimed += len(expired)
        return expired

    # -- acquisition --------------------------------------------------------

    def acquire(
        self,
        client_id: str,
        keys: Iterable[ItemKey],
        *,
        lease_seconds=_DEFAULT,
    ) -> None:
        """Lock *keys* for *client_id*, all or nothing.

        Re-acquiring one's own lock is idempotent (and refreshes its
        lease); any key held — with an unexpired lease — by a different
        client fails the whole acquisition (no partial locks are left
        behind). Keys whose lease expired are reclaimed on the spot.
        """
        wanted = list(keys)
        conflicts = [
            (key, holder)
            for key in wanted
            if (holder := self._live_holder(key)) is not None
            and holder != client_id
        ]
        if conflicts:
            description = ", ".join(
                f"{key} held by {self._alias(holder)!r}"
                for key, holder in conflicts
            )
            raise LockError(
                f"client {self._alias(client_id)!r} cannot lock: {description}"
            )
        expiry = self._expiry(lease_seconds)
        for key in wanted:
            entry = self._locks.get(key)
            if entry is not None and self._live_holder(key) is None:
                self.reclaimed += 1  # expired lock of a dead client
            self._locks[key] = (client_id, expiry)

    def renew(
        self,
        client_id: str,
        keys: Optional[Iterable[ItemKey]] = None,
        *,
        lease_seconds=_DEFAULT,
    ) -> int:
        """Extend the lease on *keys* (or all held locks); returns count.

        Renewing a lock whose lease already expired raises
        :class:`~repro.core.errors.LockError` — the client must assume
        it lost the item and check out again.
        """
        if keys is None:
            to_renew = self.held_by(client_id)
        else:
            to_renew = []
            for key in keys:
                if self._live_holder(key) != client_id:
                    raise LockError(
                        f"client {self._alias(client_id)!r} no longer holds "
                        f"the lock on {key} (released or lease expired)"
                    )
                to_renew.append(key)
        expiry = self._expiry(lease_seconds)
        for key in to_renew:
            self._locks[key] = (client_id, expiry)
        return len(to_renew)

    def release(self, client_id: str, keys: Optional[Iterable[ItemKey]] = None) -> int:
        """Release *keys* (or all of the client's locks); returns the count."""
        if keys is None:
            to_release = self.held_by(client_id)
        else:
            to_release = []
            for key in keys:
                holder = self._live_holder(key)
                if holder is None:
                    continue
                if holder != client_id:
                    raise LockError(
                        f"client {self._alias(client_id)!r} does not hold "
                        f"the lock on {key}"
                    )
                to_release.append(key)
        for key in to_release:
            del self._locks[key]
        return len(to_release)

    # -- queries ------------------------------------------------------------

    def holder(self, key: ItemKey) -> Optional[str]:
        """The client holding *key*'s lock (lease unexpired), or None."""
        return self._live_holder(key)

    def is_locked(self, key: ItemKey) -> bool:
        """True when any client holds *key* with an unexpired lease."""
        return self._live_holder(key) is not None

    def held_by(self, client_id: str) -> list[ItemKey]:
        """All keys locked by *client_id* (expired leases excluded)."""
        return [
            key
            for key in self._locks
            if self._live_holder(key) == client_id
        ]

    def __len__(self) -> int:
        """Count of live (unexpired) locks."""
        return sum(1 for key in self._locks if self._live_holder(key) is not None)
