"""Write locks for the two-level multi-user architecture.

"Data that has been copied to a client for update has a write lock in
the central database." The lock table is item-granular: every object or
relationship checked out for update is locked by exactly one client;
conflicting check-outs fail fast with :class:`~repro.core.errors.
LockError` rather than blocking (the paper sketches no queueing).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.errors import LockError
from repro.core.versions.store import ItemKey

__all__ = ["LockTable"]


class LockTable:
    """Item-granular write locks, keyed like the version store."""

    def __init__(self) -> None:
        self._locks: dict[ItemKey, str] = {}

    def acquire(self, client_id: str, keys: Iterable[ItemKey]) -> None:
        """Lock *keys* for *client_id*, all or nothing.

        Re-acquiring one's own lock is idempotent; any key held by a
        different client fails the whole acquisition (no partial locks
        are left behind).
        """
        wanted = list(keys)
        conflicts = [
            (key, holder)
            for key in wanted
            if (holder := self._locks.get(key)) is not None and holder != client_id
        ]
        if conflicts:
            description = ", ".join(
                f"{key} held by {holder!r}" for key, holder in conflicts
            )
            raise LockError(
                f"client {client_id!r} cannot lock: {description}"
            )
        for key in wanted:
            self._locks[key] = client_id

    def release(self, client_id: str, keys: Optional[Iterable[ItemKey]] = None) -> int:
        """Release *keys* (or all of the client's locks); returns the count."""
        if keys is None:
            to_release = [
                key for key, holder in self._locks.items() if holder == client_id
            ]
        else:
            to_release = []
            for key in keys:
                holder = self._locks.get(key)
                if holder is None:
                    continue
                if holder != client_id:
                    raise LockError(
                        f"client {client_id!r} does not hold the lock on {key}"
                    )
                to_release.append(key)
        for key in to_release:
            del self._locks[key]
        return len(to_release)

    def holder(self, key: ItemKey) -> Optional[str]:
        """The client holding *key*'s lock, or None."""
        return self._locks.get(key)

    def is_locked(self, key: ItemKey) -> bool:
        """True when any client holds *key*."""
        return key in self._locks

    def held_by(self, client_id: str) -> list[ItemKey]:
        """All keys locked by *client_id*."""
        return [key for key, holder in self._locks.items() if holder == client_id]

    def __len__(self) -> int:
        return len(self._locks)
