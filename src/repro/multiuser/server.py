"""The central SEED server of the two-level multi-user architecture.

The paper's sketch ("Open problems"): "One central server runs the
complete database and several clients use the server for retrieval
operations, but take local copies for making updates. Data that has been
copied to a client for update has a write lock in the central database.
When a client sends an updated copy back to the server, the server puts
the modified data into the central database in a single transaction.
Versions are kept both locally and globally under control of the user
and the server, respectively."

:class:`SeedServer` implements that sketch in-process (the paper gives
no wire protocol, and none is needed to study the concurrency
behaviour): clients are :class:`~repro.multiuser.client.SeedClient`
handles obtained from :meth:`connect`; retrieval goes straight to the
master database; updates travel through check-out / check-in.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional

from repro.core import faults
from repro.core.database import SeedDatabase
from repro.core.errors import CheckInError, SeedError
from repro.core.objects import SeedObject
from repro.core.schema.schema import Schema
from repro.core.storage.engine import JournaledDatabase
from repro.core.versions.store import ItemKey
from repro.core.versions.version_id import VersionId
from repro.multiuser.locks import LockTable

__all__ = ["SeedServer"]


class SeedServer:
    """The central database plus lock management and global versions.

    Durability: bind the server to a
    :class:`~repro.core.storage.engine.JournaledDatabase` (pass
    ``journal=`` or construct via :meth:`open`) and every *accepted*
    check-in becomes durable at O(change) cost — the package is
    appended as a write-ahead delta record before the master applies
    it, and replayed on the next load atop the newest intact image.
    A rejected check-in leaves an abort marker so replay skips it.
    :meth:`checkpoint` still bounds replay length with a full image.

    Liveness: pass ``lease_seconds`` (and, in tests, an injectable
    ``clock``) and a crashed client's write locks expire — conflicting
    check-outs reclaim them, while the dead client's eventual check-in
    is rejected by the held-lock validation instead of clobbering the
    reclaimer's work.
    """

    def __init__(
        self,
        schema: Optional[Schema] = None,
        name: str = "central",
        *,
        journal: Optional[JournaledDatabase] = None,
        lease_seconds: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if journal is not None:
            self.journal: Optional[JournaledDatabase] = journal
            self.master = journal.db
        else:
            if schema is None:
                raise SeedError("SeedServer needs a schema or a journal")
            self.journal = None
            self.master = SeedDatabase(schema, name)
        self.locks = LockTable(lease_seconds=lease_seconds, clock=clock)
        self._clients: dict[str, "SeedClient"] = {}

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        schema: Optional[Schema] = None,
        name: str = "central",
        lease_seconds: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        strict: bool = False,
    ) -> "SeedServer":
        """A journal-bound server: open (or create) the journal at *path*."""
        journal = JournaledDatabase.open(
            path, schema=schema, name=name, strict=strict
        )
        return cls(journal=journal, lease_seconds=lease_seconds, clock=clock)

    def checkpoint(self) -> int:
        """Append a full image to the journal; returns the file size."""
        if self.journal is None:
            raise SeedError("server has no journal to checkpoint to")
        return self.journal.checkpoint()

    # -- client lifecycle ----------------------------------------------------

    def connect(self, client_id: str) -> "SeedClient":
        """Register a client and hand out its handle."""
        from repro.multiuser.client import SeedClient

        if client_id in self._clients:
            raise SeedError(f"client id {client_id!r} is already connected")
        client = SeedClient(self, client_id)
        self._clients[client_id] = client
        return client

    def disconnect(self, client_id: str) -> None:
        """Drop a client; its locks are released (work is abandoned)."""
        self._clients.pop(client_id, None)
        self.locks.release(client_id)

    def clients(self) -> list[str]:
        """Connected client ids."""
        return sorted(self._clients)

    # -- retrieval (no locks needed) ----------------------------------------------

    def find_object(self, name: str) -> Optional[SeedObject]:
        """Retrieval passthrough to the master database."""
        return self.master.find_object(name)

    def objects(self, class_name: Optional[str] = None) -> list[SeedObject]:
        """Retrieval passthrough to the master database."""
        return self.master.objects(class_name)

    # -- check-out support ------------------------------------------------------------

    def closure_keys(self, roots: list[SeedObject]) -> tuple[list[SeedObject], list[ItemKey]]:
        """The copy set of a check-out: root objects, their sub-trees, and
        every relationship among the copied objects.

        Returns (objects, item keys incl. relationships). Relationships
        with only one endpoint in the set are *not* copied (they remain
        retrievable from the server and updatable by whoever owns the
        other end's lock set).
        """
        objects: list[SeedObject] = []
        oids: set[int] = set()
        for root in roots:
            for node in root.walk():
                if node.oid not in oids:
                    oids.add(node.oid)
                    objects.append(node)
        keys: list[ItemKey] = [("o", obj.oid) for obj in objects]
        for rel in self.master.relationships(include_patterns=True):
            endpoint_oids = [obj.oid for obj in rel.bound_objects()]
            if all(oid in oids for oid in endpoint_oids):
                keys.append(("r", rel.rid))
        return objects, keys

    # -- check-in ----------------------------------------------------------------------

    def apply_check_in(
        self,
        client_id: str,
        changes: "CheckInPackage",
    ) -> dict[int, int]:
        """Apply a client's updated copy in a single master transaction.

        Returns the id translation map (local id → master id) for items
        the client created. Large packages replay through the master's
        deferred-maintenance bulk path: no per-item index undo closures
        or incremental ACYCLIC probes while the package applies, one
        index rebuild plus one validation pass at the end. Small
        packages (the lock-a-few-items common case) stay on the
        per-item transaction — a bulk batch pays an O(master) pre-batch
        snapshot plus a full index rebuild, which only amortizes once
        the package is a sizeable fraction of the master. Either way
        the semantics are identical: any consistency violation or
        stale-copy conflict rolls everything back in place — the master
        is left unchanged (surviving handles stay valid) and the client
        keeps its locks (it can fix the copy and retry).
        """
        held = set(self.locks.held_by(client_id))
        for key in changes.changed_existing_keys():
            if key not in held:
                raise CheckInError(
                    f"client {client_id!r} modified {key} without holding "
                    "its lock"
                )
        package_size = (
            len(changes.created_objects)
            + len(changes.created_relationships)
            + len(changes.modified_objects)
            + len(changes.modified_relationships)
        )
        master_items = len(self.master._objects) + len(  # noqa: SLF001
            self.master._relationships  # noqa: SLF001
        )
        use_bulk = package_size >= 64 and package_size * 8 >= master_items
        boundary = self.master.bulk if use_bulk else self.master.transaction
        seq = None
        if self.journal is not None and not changes.is_empty():
            # write-ahead: the delta is durable before the master
            # mutates, so an acknowledged check-in survives a crash
            if faults._PLAN is not None:  # noqa: SLF001 - zero-cost guard
                faults.fire("checkin.journal.pre_append")
            seq = self.journal.append_delta(package_to_dict(changes))
        try:
            with boundary():
                translation = changes.apply_to(self.master)
        except BaseException:
            if seq is not None:
                # neutralize the journaled delta; if *this* append is
                # lost to a crash too, replay re-fails the delta
                # deterministically — same committed state either way
                self.journal.append_abort(seq)
            raise
        self.locks.release(client_id)
        return translation

    # -- global versions -------------------------------------------------------------------

    def create_global_version(
        self, version: Optional[str | VersionId] = None
    ) -> VersionId:
        """Snapshot the central database (server-controlled versions)."""
        return self.master.create_version(version)

    def global_versions(self) -> list[VersionId]:
        """All server-side versions."""
        return self.master.saved_versions()


# imported late to avoid a cycle in type checking; re-exported for typing
from repro.multiuser.checkin import (  # noqa: E402  (cycle guard)
    CheckInPackage,
    package_to_dict,
)
