"""The central SEED server of the two-level multi-user architecture.

The paper's sketch ("Open problems"): "One central server runs the
complete database and several clients use the server for retrieval
operations, but take local copies for making updates. Data that has been
copied to a client for update has a write lock in the central database.
When a client sends an updated copy back to the server, the server puts
the modified data into the central database in a single transaction.
Versions are kept both locally and globally under control of the user
and the server, respectively."

:class:`SeedServer` implements that architecture. Since PR 7 it is a
real concurrent service core rather than an in-process sketch:

**Sessions.** Every :meth:`connect` mints a session token
(:mod:`repro.multiuser.sessions`); check-out, check-in, renewal, and
abandon all authenticate the token first. Locks and check-out standing
are keyed by token — never by the reusable client id — which
structurally closes the zombie-client holes: a disconnected handle, a
lease-expired one, or a stale pre-disconnect handle after a reconnect
cannot check in anything (create-only packages included) or touch the
successor session's locks.

**MVCC snapshot reads.** :meth:`publish_snapshot` materializes a
consistent read view from the version store (which already keeps every
committed state); :meth:`snapshot` serves pinned views from a bounded
cache. A pinned view is a fully materialized, immutable object — reads
against it never block on (and are never torn by) an in-flight check-in
or ``bulk()`` batch. The wire layer
(:mod:`repro.multiuser.service`) applies check-ins in a worker thread
while the event loop keeps answering snapshot reads.

**Background maintenance.** :meth:`maintain` runs version-store
compaction + tombstone GC between check-ins (the service schedules it
automatically), pinning every cached snapshot so pinned readers survive
the squash.

Durability: bind a
:class:`~repro.core.storage.engine.JournaledDatabase` (``journal=`` or
:meth:`open`) and accepted check-ins are durable at O(change) via
write-ahead deltas — and so are *direct* master transactions, through
the journal's post-commit txn sink (suspended while a check-in package
applies, since the check-in delta already covers those commits).
:meth:`maintain` additionally enforces the policy's
``journal_byte_budget`` so a long-lived server's journal stays bounded.
Liveness is unchanged from PR 6: pass ``lease_seconds`` and a crashed
client's locks — and, since PR 7, its check-out standing — expire
together.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterable, Optional, TYPE_CHECKING

from repro.core import faults
from repro.core.database import SeedDatabase
from repro.core.errors import CheckInError, SeedError, VersionError
from repro.core.objects import ObjectState, SeedObject
from repro.core.relationships import RelationshipState
from repro.core.schema.schema import Schema
from repro.core.storage.engine import GroupCommitPolicy, JournaledDatabase
from repro.core.versions.compaction import CompactionStats, RetentionPolicy
from repro.core.versions.store import ItemKey
from repro.core.versions.version_id import VersionId
from repro.core.versions.view import VersionView
from repro.multiuser.locks import LockTable
from repro.multiuser.sessions import Session, SessionManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.multiuser.client import SeedClient

__all__ = ["CheckOutTicket", "SeedServer"]

#: pinned snapshot views kept hot by default (oldest evicted first)
DEFAULT_SNAPSHOT_CACHE = 8

#: compaction between check-ins when the caller names no policy
DEFAULT_MAINTENANCE = RetentionPolicy(
    squash_chains=True, snapshot_interval=16, keep_last=2, gc_tombstones=True
)


@dataclass
class CheckOutTicket:
    """Everything a client needs to materialize its local copy.

    Pure data (frozen item states), so it serializes over the wire
    (:mod:`repro.multiuser.protocol`) exactly as it hands off
    in-process. ``keys`` are the write locks granted to the session;
    ``next_id_floor`` keeps locally created ids clear of every master
    id so check-in translation is unambiguous.
    """

    objects: list[tuple[int, ObjectState]]
    relationships: list[tuple[int, RelationshipState]]
    keys: list[ItemKey]
    next_id_floor: int


class SeedServer:
    """The central database plus sessions, locks, snapshots, versions."""

    def __init__(
        self,
        schema: Optional[Schema] = None,
        name: str = "central",
        *,
        journal: Optional[JournaledDatabase] = None,
        lease_seconds: Optional[float] = None,
        session_seconds: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        snapshot_cache_size: int = DEFAULT_SNAPSHOT_CACHE,
    ) -> None:
        if journal is not None:
            self.journal: Optional[JournaledDatabase] = journal
            self.master = journal.db
        else:
            if schema is None:
                raise SeedError("SeedServer needs a schema or a journal")
            self.journal = None
            self.master = SeedDatabase(schema, name)
        self.sessions = SessionManager(
            session_seconds=session_seconds, clock=clock
        )
        self.locks = LockTable(
            lease_seconds=lease_seconds,
            clock=clock,
            # conflicts must name the user, not the opaque credential
            owner_alias=lambda token: self.sessions.client_of(token) or token,
        )
        #: in-process client handles by client id (live sessions only)
        self._clients: dict[str, "SeedClient"] = {}
        #: session token -> standing expiry (None = leaseless standing);
        #: standing is the right to check a copy back in
        self._standing: dict[str, Optional[float]] = {}
        #: published snapshot views by version string, oldest first
        self._views: "OrderedDict[str, VersionView]" = OrderedDict()
        self._published: Optional[VersionId] = None
        self.snapshot_cache_size = max(1, snapshot_cache_size)
        self.maintenance_policy = DEFAULT_MAINTENANCE
        # -- service counters (diagnostics, surfaced by `repro serve`) --
        self.checkins_applied = 0
        self.checkins_rejected = 0
        self.maintenance_runs = 0

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        schema: Optional[Schema] = None,
        name: str = "central",
        lease_seconds: Optional[float] = None,
        session_seconds: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        strict: bool = False,
        byte_budget: Optional[int] = None,
        group_commit: Optional[GroupCommitPolicy] = None,
        streamed_checkpoints: bool = False,
    ) -> "SeedServer":
        """A journal-bound server: open (or create) the journal at *path*.

        *group_commit* batches direct-transaction journal appends (one
        fsync per batch, see
        :class:`~repro.core.storage.engine.GroupCommitPolicy`); check-in
        appends, snapshot pins, maintenance, and shutdown remain hard
        flush barriers, so the bounded durability window only ever
        covers direct commits. *streamed_checkpoints* makes every
        checkpoint stream its image records instead of materializing
        the monolithic image dict.
        """
        journal = JournaledDatabase.open(
            path, schema=schema, name=name, strict=strict,
            byte_budget=byte_budget, group_commit=group_commit,
            clock=clock, streamed_checkpoints=streamed_checkpoints,
        )
        return cls(
            journal=journal,
            lease_seconds=lease_seconds,
            session_seconds=session_seconds,
            clock=clock,
        )

    def checkpoint(self) -> int:
        """Append a full image to the journal; returns the file size."""
        if self.journal is None:
            raise SeedError("server has no journal to checkpoint to")
        return self.journal.checkpoint()

    # -- session lifecycle ---------------------------------------------------

    def connect(self, client_id: str) -> "SeedClient":
        """Open a session and hand out an in-process client handle.

        Wire clients use :meth:`open_session` (via the service) instead;
        both paths mint the same kind of session. A client id with a
        live session cannot connect twice; after :meth:`disconnect` the
        id is free again — and gets a *fresh token*, so the previous
        handle's locks and standing stay out of reach.
        """
        from repro.multiuser.client import SeedClient

        session = self.open_session(client_id)
        client = SeedClient(self, client_id, session.token)
        self._clients[client_id] = client
        return client

    def open_session(self, client_id: str) -> Session:
        """Authenticate a client and mint its session token."""
        return self.sessions.open(client_id)

    def disconnect(self, client_id: str) -> None:
        """Drop a client's live session; locks released, work abandoned."""
        session = self.sessions.find_live(client_id)
        self._clients.pop(client_id, None)
        if session is not None:
            self.close_session(session.token)

    def close_session(self, token: str) -> None:
        """End the session behind *token*; its locks and standing die."""
        session = self.sessions.close(token)
        self._clients.pop(session.client_id, None)
        self.locks.release(token)
        self._standing.pop(token, None)

    def renew(self, token: str) -> int:
        """Touch the session and extend its lock leases and standing.

        Returns the number of locks renewed. A dead session raises
        :class:`~repro.core.errors.SessionError`; locks whose lease
        already lapsed raise :class:`~repro.core.errors.LockError` via
        the lock table (the client must check out again).
        """
        self.sessions.validate(token)
        renewed = self.locks.renew(token)
        if token in self._standing:
            self._standing[token] = self.locks.default_expiry()
        return renewed

    def clients(self) -> list[str]:
        """Client ids with live sessions (in-process and wire alike)."""
        return sorted(session.client_id for session in self.sessions.live())

    # -- retrieval (live master; see snapshot() for MVCC reads) -------------

    def find_object(self, name: str) -> Optional[SeedObject]:
        """Retrieval passthrough to the live master database."""
        return self.master.find_object(name)

    def objects(self, class_name: Optional[str] = None) -> list[SeedObject]:
        """Retrieval passthrough to the live master database."""
        return self.master.objects(class_name)

    # -- MVCC snapshot reads -------------------------------------------------

    def publish_snapshot(
        self, version: Optional[str | VersionId] = None
    ) -> VersionId:
        """Materialize (and cache) a consistent read view of the master.

        Creates a global version when the master changed since the last
        publication (or none exists yet); otherwise the existing
        publication stands. Returns the published version id. Writers
        call this after each accepted check-in; readers pin whatever is
        published and keep reading it — a fully materialized
        :class:`~repro.core.versions.view.VersionView` is immutable, so
        pinned reads proceed while the next check-in or ``bulk()``
        batch is applying.
        """
        if (
            version is not None
            or self._published is None
            or self.master.has_unsaved_changes()
        ):
            published = self.master.create_version(version)
            self._published = published
            self._cache_view(published, self.master.version_view(published))
        if self.journal is not None:
            # pinning is a durability barrier: a reader must never see
            # state whose commits are still buffered by group commit
            self.journal.flush()
        assert self._published is not None
        return self._published

    def latest_snapshot(self) -> Optional[VersionId]:
        """The currently published snapshot version (None before first)."""
        return self._published

    def snapshot(
        self,
        version: Optional[str | VersionId] = None,
        *,
        build: bool = True,
    ) -> VersionView:
        """A pinned read view: the published snapshot, or *version*.

        With ``build=False`` only cached views are served — the wire
        service's reader path uses this so a read can never fall back
        to materializing from the version store concurrently with a
        writer; an evicted pin asks the client to re-pin instead.
        """
        if version is None:
            vid = self.publish_snapshot() if build else self._published
            if vid is None:
                raise VersionError("no snapshot published yet")
        else:
            vid = version
        key = str(vid)
        view = self._views.get(key)
        if view is None:
            if not build:
                raise VersionError(
                    f"snapshot {key} is no longer pinned (cache holds the "
                    f"newest {self.snapshot_cache_size}); pin a fresh one"
                )
            view = self.master.version_view(vid)
            self._cache_view(
                vid if isinstance(vid, VersionId) else VersionId.parse(key),
                view,
            )
        return view

    def _cache_view(self, version: VersionId, view: VersionView) -> None:
        key = str(version)
        self._views[key] = view
        self._views.move_to_end(key)
        published = None if self._published is None else str(self._published)
        while len(self._views) > self.snapshot_cache_size:
            for candidate in self._views:
                if candidate != published:
                    del self._views[candidate]
                    break
            else:  # pragma: no cover - cache of 1 holding the publication
                break

    def pinned_snapshots(self) -> list[str]:
        """Version strings of the snapshot views currently cached."""
        return list(self._views)

    # -- background maintenance ----------------------------------------------

    def maintain(
        self, policy: Optional[RetentionPolicy] = None
    ) -> CompactionStats:
        """Compact the version store between check-ins.

        Runs chain squashing, snapshot consolidation, and tombstone GC
        under *policy* (default :data:`DEFAULT_MAINTENANCE`), with every
        cached snapshot version pinned so concurrent pinned readers
        survive; stale cache entries for squashed-away versions are
        dropped afterwards. When the policy sets ``journal_byte_budget``
        (or the journal carries its own budget), the journal file is
        bounded too — checkpoint-then-compact once it exceeds the
        budget. The wire service schedules this automatically every
        ``maintain_every`` accepted check-ins.
        """
        policy = policy or self.maintenance_policy
        if self._views:
            policy = replace(
                policy, pins=frozenset(policy.pins) | set(self._views)
            )
        stats = self.master.compact(policy)
        surviving = {str(v) for v in self.master.saved_versions()}
        for key in [k for k in self._views if k not in surviving]:
            del self._views[key]  # pragma: no cover - pins protect these
        if self.journal is not None:
            # maintenance is a flush barrier whether or not a budget is
            # set; enforce_budget flushes too, but only when it runs
            self.journal.flush()
            budget = policy.journal_byte_budget
            if budget is None:
                budget = self.journal.byte_budget
            if budget is not None:
                self.journal.enforce_budget(budget)
        self.maintenance_runs += 1
        return stats

    # -- check-out -----------------------------------------------------------

    def resolve_roots(self, names: Iterable[str]) -> list[SeedObject]:
        """Root objects of a check-out: named roots plus inherited patterns.

        A copy must be self-contained to be checked for consistency
        locally, so every pattern a copied object inherits joins the
        copy set (with *its* sub-tree and relationships, recursively).
        """
        master = self.master
        roots: list[SeedObject] = []
        seen_roots: set[int] = set()
        frontier = [
            master.get_object(name, include_patterns=True) for name in names
        ]
        while frontier:
            obj = frontier.pop()
            root = obj.root
            if root.oid in seen_roots:
                continue
            seen_roots.add(root.oid)
            roots.append(root)
            for node in root.walk():
                frontier.extend(master.patterns.patterns_of(node))
        return roots

    def closure_keys(
        self, roots: list[SeedObject]
    ) -> tuple[list[SeedObject], list[ItemKey]]:
        """The copy set of a check-out: root objects, their sub-trees, and
        every relationship among the copied objects.

        Returns (objects, item keys incl. relationships). Relationships
        with only one endpoint in the set are *not* copied (they remain
        retrievable from the server and updatable by whoever owns the
        other end's lock set). Collected through the incidence index —
        O(copied objects + their incident relationships), not
        O(all relationships in the master) per check-out
        (:meth:`closure_keys_scan` is the retained scan reference).
        """
        objects, oids = self._closure_objects(roots)
        keys: list[ItemKey] = [("o", obj.oid) for obj in objects]
        copied_rids: set[int] = set()
        for obj in objects:
            for rel in self.master.relationships_of_object(
                obj, include_patterns=True
            ):
                if rel.rid in copied_rids:
                    continue
                if all(
                    bound.oid in oids for bound in rel.bound_objects()
                ):
                    copied_rids.add(rel.rid)
        # ascending rid = master creation order, identical to the scan
        keys.extend(("r", rid) for rid in sorted(copied_rids))
        return objects, keys

    def closure_keys_scan(
        self, roots: list[SeedObject]
    ) -> tuple[list[SeedObject], list[ItemKey]]:
        """Reference implementation of :meth:`closure_keys`: one pass over
        every relationship in the master (the pre-PR-7 behaviour), kept
        for the equivalence suite."""
        objects, oids = self._closure_objects(roots)
        keys: list[ItemKey] = [("o", obj.oid) for obj in objects]
        for rel in self.master.relationships(include_patterns=True):
            endpoint_oids = [obj.oid for obj in rel.bound_objects()]
            if all(oid in oids for oid in endpoint_oids):
                keys.append(("r", rel.rid))
        return objects, keys

    @staticmethod
    def _closure_objects(
        roots: list[SeedObject],
    ) -> tuple[list[SeedObject], set[int]]:
        objects: list[SeedObject] = []
        oids: set[int] = set()
        for root in roots:
            for node in root.walk():
                if node.oid not in oids:
                    oids.add(node.oid)
                    objects.append(node)
        return objects, oids

    def check_out(self, token: str, names: Iterable[str]) -> CheckOutTicket:
        """Lock the named objects' closure for the session behind *token*.

        Validates the session, resolves the closure, acquires the write
        locks (all or nothing), records check-out *standing* (stamped
        with the same lease expiry as the locks), and returns the
        frozen copy set. In-process and wire clients both materialize
        their local database from this ticket.
        """
        session = self.sessions.validate(token)
        if token in self._standing:
            raise SeedError(
                f"client {session.client_id!r} already holds a copy; check "
                "it in or abandon it first"
            )
        roots = self.resolve_roots(names)
        objects, keys = self.closure_keys(roots)
        self.locks.acquire(token, keys)
        self._standing[token] = self.locks.default_expiry()
        master = self.master
        copied_rids = [item_id for kind, item_id in keys if kind == "r"]
        return CheckOutTicket(
            objects=[(obj.oid, obj.freeze()) for obj in objects],
            relationships=[
                (rid, master._relationships[rid].freeze())  # noqa: SLF001
                for rid in copied_rids
            ],
            keys=keys,
            # fresh local ids must not collide with *any* master id
            next_id_floor=master._next_id + 1_000_000,  # noqa: SLF001
        )

    def abandon(self, token: str) -> None:
        """Release the session's locks and standing; nothing is applied."""
        self.sessions.validate(token)
        if token not in self._standing:
            raise SeedError("session has no checked-out copy to abandon")
        self.locks.release(token)
        self._standing.pop(token, None)

    # -- check-in ----------------------------------------------------------------------

    def apply_check_in(
        self,
        token: str,
        changes: "CheckInPackage",
        *,
        force_bulk: Optional[bool] = None,
    ) -> dict[int, int]:
        """Apply a session's updated copy in a single master transaction.

        Standing is validated first — the zombie-client fix: the caller
        must present a *live* session token (not disconnected, not
        expired) that still holds unexpired check-out standing, so a
        create-only package from a zombie handle is rejected before the
        held-lock validation (which only ever saw modified keys) runs.

        Returns the id translation map (local id -> master id) for items
        the client created. Large packages replay through the master's
        deferred-maintenance bulk path — ``force_bulk`` overrides the
        size heuristic in either direction (the client API's ``bulk()``
        exposure for large check-ins): no per-item index undo closures
        or incremental ACYCLIC probes while the package applies, one
        index rebuild plus one validation pass at the end. Small
        packages (the lock-a-few-items common case) stay on the
        per-item transaction — a bulk batch pays an O(master) pre-batch
        snapshot plus a full index rebuild, which only amortizes once
        the package is a sizeable fraction of the master. Either way
        the semantics are identical: any consistency violation or
        stale-copy conflict rolls everything back in place — the master
        is left unchanged (surviving handles stay valid) and the client
        keeps its locks and standing (it can fix the copy and retry).
        """
        session = self.sessions.validate(token)
        client_id = session.client_id
        if token not in self._standing:
            raise CheckInError(
                f"client {client_id!r} has no checked-out copy to check in "
                "(no standing: check out first)"
            )
        if self.locks.is_expired(self._standing[token]):
            raise CheckInError(
                f"client {client_id!r} checked in without holding standing: "
                "its lease expired and the locks may have been reclaimed; "
                "abandon and check out again"
            )
        held = set(self.locks.held_by(token))
        for key in changes.changed_existing_keys():
            if key not in held:
                raise CheckInError(
                    f"client {client_id!r} modified {key} without holding "
                    "its lock"
                )
        package_size = (
            len(changes.created_objects)
            + len(changes.created_relationships)
            + len(changes.modified_objects)
            + len(changes.modified_relationships)
        )
        master_items = len(self.master._objects) + len(  # noqa: SLF001
            self.master._relationships  # noqa: SLF001
        )
        if force_bulk is None:
            use_bulk = package_size >= 64 and package_size * 8 >= master_items
        else:
            use_bulk = force_bulk and package_size > 0
        boundary = self.master.bulk if use_bulk else self.master.transaction
        seq = None
        if self.journal is not None and not changes.is_empty():
            # write-ahead: the delta is durable before the master
            # mutates, so an acknowledged check-in survives a crash
            if faults._PLAN is not None:  # noqa: SLF001 - zero-cost guard
                faults.fire("checkin.journal.pre_append")
            seq = self.journal.append_delta(package_to_dict(changes))
        suspend = (
            self.journal.suspended_txn_sink()
            if self.journal is not None
            # the check-in delta above already covers these commits
            else nullcontext()
        )
        try:
            with suspend, boundary():
                translation = changes.apply_to(self.master)
        except BaseException:
            self.checkins_rejected += 1
            if seq is not None:
                # neutralize the journaled delta; if *this* append is
                # lost to a crash too, replay re-fails the delta
                # deterministically — same committed state either way
                self.journal.append_abort(seq)
            raise
        self.locks.release(token)
        self._standing.pop(token, None)
        self.checkins_applied += 1
        if self.journal is not None and self.journal.byte_budget is not None:
            # safe trigger point: the delta's effects are applied, so a
            # checkpoint taken by enforcement already contains them
            self.journal.enforce_budget()
        return translation

    # -- global versions -------------------------------------------------------------------

    def create_global_version(
        self, version: Optional[str | VersionId] = None
    ) -> VersionId:
        """Snapshot the central database (server-controlled versions)."""
        return self.master.create_version(version)

    def global_versions(self) -> list[VersionId]:
        """All server-side versions."""
        return self.master.saved_versions()


# imported late to avoid a cycle in type checking; re-exported for typing
from repro.multiuser.checkin import (  # noqa: E402  (cycle guard)
    CheckInPackage,
    package_to_dict,
)
