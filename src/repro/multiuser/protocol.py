"""Wire protocol for the multi-user service: JSON lines over a socket.

One request or response per line, UTF-8 JSON, newline-terminated — the
simplest framing that a line-buffered reader on either side can parse
incrementally. Requests carry an ``op`` plus parameters (and the session
``token`` for every authenticated operation); responses are either

``{"ok": true, "result": ...}``

or

``{"ok": false, "error": "<code>", "message": "..."}``

where ``error`` is a symbolic code mapped from the server-side exception
class (:data:`ERROR_CODES`). The client raises the matching exception
class again (:func:`raise_remote_error`), so wire clients see the same
error surface as in-process clients — ``SessionError`` for a zombie
token is an ``SessionError`` on both sides of the socket.

Payload codecs reuse the journal's state serializers
(:mod:`repro.multiuser.checkin`): a check-out ticket travels as the same
frozen-state dictionaries a write-ahead delta uses, and a check-in
package travels as its ``package_to_dict`` form. Item keys — tuples
``("o", id)`` / ``("r", id)`` in memory — become two-element lists in
JSON and are restored on decode.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.errors import (
    CheckInError,
    ConsistencyError,
    LockError,
    SeedError,
    SessionError,
    VersionError,
)
from repro.multiuser.checkin import (
    object_state_from_dict,
    object_state_to_dict,
    relationship_state_from_dict,
    relationship_state_to_dict,
)
from repro.multiuser.server import CheckOutTicket

__all__ = [
    "ERROR_CODES",
    "encode_message",
    "decode_message",
    "error_response",
    "ok_response",
    "raise_remote_error",
    "ticket_to_dict",
    "ticket_from_dict",
]

#: symbolic wire code -> exception class; the generic "seed" entry is
#: both the fallback encoding for unlisted SeedError subclasses and the
#: decoding for codes a newer server might send an older client
ERROR_CODES: dict[str, type[SeedError]] = {
    "session": SessionError,
    "lock": LockError,
    "checkin": CheckInError,
    "consistency": ConsistencyError,
    "version": VersionError,
    "seed": SeedError,
}

_CLASS_TO_CODE = {cls: code for code, cls in ERROR_CODES.items()}


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def encode_message(message: dict[str, Any]) -> bytes:
    """One wire frame: compact JSON plus the newline terminator."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes | str) -> dict[str, Any]:
    """Parse one frame; raises :class:`SeedError` on malformed input."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise SeedError(f"malformed wire frame: {exc}") from None
    if not isinstance(message, dict):
        raise SeedError(
            f"wire frame must be a JSON object, got {type(message).__name__}"
        )
    return message


# ---------------------------------------------------------------------------
# responses
# ---------------------------------------------------------------------------

def ok_response(result: Any) -> dict[str, Any]:
    """A success response envelope."""
    return {"ok": True, "result": result}


def error_response(exc: BaseException) -> dict[str, Any]:
    """Map a server-side exception onto the wire error envelope.

    The most specific registered class wins (walks the MRO, so e.g. a
    bespoke ``LockError`` subclass still travels as ``"lock"``).
    """
    code = "seed"
    for cls in type(exc).__mro__:
        if cls in _CLASS_TO_CODE:
            code = _CLASS_TO_CODE[cls]
            break
    return {"ok": False, "error": code, "message": str(exc)}


def raise_remote_error(response: dict[str, Any]) -> None:
    """Re-raise the exception a ``{"ok": false}`` response describes."""
    cls = ERROR_CODES.get(response.get("error", "seed"), SeedError)
    raise cls(response.get("message", "remote error"))


# ---------------------------------------------------------------------------
# payload codecs
# ---------------------------------------------------------------------------

def ticket_to_dict(ticket: CheckOutTicket) -> dict[str, Any]:
    """JSON form of a check-out ticket (frozen states + keys + floor)."""
    return {
        "objects": [
            [oid, object_state_to_dict(state)]
            for oid, state in ticket.objects
        ],
        "relationships": [
            [rid, relationship_state_to_dict(state)]
            for rid, state in ticket.relationships
        ],
        "keys": [[kind, item_id] for kind, item_id in ticket.keys],
        "next_id_floor": ticket.next_id_floor,
    }


def ticket_from_dict(data: dict[str, Any]) -> CheckOutTicket:
    """Inverse of :func:`ticket_to_dict`."""
    return CheckOutTicket(
        objects=[
            (oid, object_state_from_dict(state))
            for oid, state in data["objects"]
        ],
        relationships=[
            (rid, relationship_state_from_dict(state))
            for rid, state in data["relationships"]
        ],
        keys=[(kind, item_id) for kind, item_id in data["keys"]],
        next_id_floor=data["next_id_floor"],
    )
