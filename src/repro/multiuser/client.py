"""SEED clients: local copies for update, check-in to the server.

"several clients use the server for retrieval operations, but take
local copies for making updates" — a :class:`SeedClient` checks out a
set of objects (with their sub-trees, the relationships among them, and
any patterns they inherit), works on a private
:class:`~repro.core.database.SeedDatabase` copy with full SEED semantics
(consistency checking, local versions, transactions), and checks the
updated copy back in as one server-side transaction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.core.bulk import load_item_states
from repro.core.database import SeedDatabase
from repro.core.errors import LockError, SeedError
from repro.core.objects import ObjectState, SeedObject
from repro.core.relationships import RelationshipState
from repro.core.versions.version_id import VersionId
from repro.multiuser.checkin import build_package

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.multiuser.server import SeedServer

__all__ = ["SeedClient", "RetryPolicy"]


@dataclass
class RetryPolicy:
    """Bounded retry for contended check-outs (fail-fast stays default).

    ``attempts`` tries in total, sleeping ``backoff * 2**i`` (capped at
    ``max_backoff``) between them, giving up early once ``deadline``
    seconds have elapsed since the first attempt. ``sleep``/``clock``
    are injectable so tests drive a fake clock (shared with the lock
    table's lease clock) instead of wall-clock waiting — a retry loop
    against an expiring lease then reclaims a dead client's locks
    deterministically.
    """

    attempts: int = 3
    backoff: float = 0.05
    max_backoff: float = 1.0
    deadline: Optional[float] = None
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def delay(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based)."""
        return min(self.max_backoff, self.backoff * (2 ** (attempt - 1)))

    def run(self, operation: Callable[[], "SeedDatabase"]) -> "SeedDatabase":
        """Call *operation* until it stops raising ``LockError``."""
        if self.attempts < 1:
            raise ValueError("RetryPolicy needs at least one attempt")
        started = self.clock()
        for attempt in range(1, self.attempts + 1):
            try:
                return operation()
            except LockError:
                out_of_attempts = attempt >= self.attempts
                out_of_time = (
                    self.deadline is not None
                    and self.clock() - started >= self.deadline
                )
                if out_of_attempts or out_of_time:
                    raise
                self.sleep(self.delay(attempt))
        raise AssertionError("unreachable")  # pragma: no cover


class SeedClient:
    """One user's handle on the central database."""

    def __init__(self, server: "SeedServer", client_id: str) -> None:
        self._server = server
        self.client_id = client_id
        self._local: Optional[SeedDatabase] = None
        self._baseline_objects: dict[int, ObjectState] = {}
        self._baseline_relationships: dict[int, RelationshipState] = {}

    # -- retrieval (server-side, no copy) -----------------------------------

    def find_object(self, name: str) -> Optional[SeedObject]:
        """Retrieval against the central database (read-only use!)."""
        return self._server.find_object(name)

    # -- check-out ------------------------------------------------------------

    @property
    def local(self) -> SeedDatabase:
        """The local copy; only available between check-out and check-in."""
        if self._local is None:
            raise SeedError(
                f"client {self.client_id!r} has no checked-out copy"
            )
        return self._local

    @property
    def has_copy(self) -> bool:
        """True while a local copy is checked out."""
        return self._local is not None

    def check_out(
        self, *names: str, retry: Optional[RetryPolicy] = None
    ) -> SeedDatabase:
        """Copy the named objects (closure) for local update.

        The closure comprises the objects' sub-trees, every relationship
        among copied objects, and every pattern a copied object inherits
        (with *its* sub-tree and relationships, recursively) — a copy
        must be self-contained to be checked for consistency locally.
        Write locks are taken centrally; a conflicting check-out raises
        :class:`~repro.core.errors.LockError` with the holder's id —
        immediately by default, or after the bounded wait of *retry*
        (each attempt re-resolves the closure, so a retry can succeed
        once the holder releases, checks in, or lets its lease expire).
        """
        if retry is not None:
            return retry.run(lambda: self.check_out(*names))
        if self._local is not None:
            raise SeedError(
                f"client {self.client_id!r} already holds a copy; check it "
                "in or abandon it first"
            )
        master = self._server.master
        roots: list[SeedObject] = []
        seen_roots: set[int] = set()
        frontier = [
            master.get_object(name, include_patterns=True) for name in names
        ]
        while frontier:
            obj = frontier.pop()
            root = obj.root
            if root.oid in seen_roots:
                continue
            seen_roots.add(root.oid)
            roots.append(root)
            for node in root.walk():
                frontier.extend(master.patterns.patterns_of(node))
        objects, keys = self._server.closure_keys(roots)
        self._server.locks.acquire(self.client_id, keys)
        self._local = self._copy_items(master, objects, keys)
        self._baseline_objects = {
            obj.oid: obj.freeze() for obj in self._local.all_objects_raw()
        }
        self._baseline_relationships = {
            rel.rid: rel.freeze() for rel in self._local.all_relationships_raw()
        }
        return self._local

    def _copy_items(self, master: SeedDatabase, objects, keys) -> SeedDatabase:
        """Materialize the copy set into a fresh local database.

        One-shot: the closure items are frozen and handed to the shared
        bulk state materializer, which wires parents, name index,
        incidence, patterns, and indexes in a single pass (checkout at
        index-rebuild speed — no per-item maintenance).
        """
        local = SeedDatabase(master.schema, f"{master.name}@{self.client_id}")
        copied_rids = [item_id for kind, item_id in keys if kind == "r"]
        load_item_states(
            local,
            ((obj.oid, obj.freeze()) for obj in objects),
            (
                (rid, master._relationships[rid].freeze())  # noqa: SLF001
                for rid in copied_rids
            ),
            # fresh local ids must not collide with *any* master id
            next_id_floor=master._next_id + 1_000_000,  # noqa: SLF001
        )
        local.clear_dirty()
        return local

    # -- check-in ---------------------------------------------------------------------

    def check_in(self) -> dict[int, int]:
        """Send the updated copy back; the server applies it atomically.

        Returns the id translation map for locally created items. On
        success the local copy is dropped and all locks are released; on
        failure (consistency violation or stale data) the copy and locks
        survive so the client can repair and retry.
        """
        local = self.local
        package = build_package(
            local, self._baseline_objects, self._baseline_relationships
        )
        translation = self._server.apply_check_in(self.client_id, package)
        self._drop_copy()
        return translation

    def abandon(self) -> None:
        """Discard the local copy and release all locks (nothing applied)."""
        if self._local is None:
            raise SeedError(f"client {self.client_id!r} has no copy to abandon")
        self._server.locks.release(self.client_id)
        self._drop_copy()

    def _drop_copy(self) -> None:
        self._local = None
        self._baseline_objects = {}
        self._baseline_relationships = {}

    # -- local versions ("kept locally under control of the user") -------------------------

    def save_local_version(self, version: Optional[str] = None) -> VersionId:
        """Snapshot the local copy (user-controlled local versions)."""
        return self.local.create_version(version)

    def local_versions(self) -> list[VersionId]:
        """Local snapshots taken during this check-out."""
        return self.local.saved_versions()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "holding copy" if self.has_copy else "idle"
        return f"<SeedClient {self.client_id!r} ({state})>"
