"""SEED clients: local copies for update, check-in to the server.

"several clients use the server for retrieval operations, but take
local copies for making updates" — a :class:`SeedClient` checks out a
set of objects (with their sub-trees, the relationships among them, and
any patterns they inherit), works on a private
:class:`~repro.core.database.SeedDatabase` copy with full SEED semantics
(consistency checking, local versions, transactions), and checks the
updated copy back in as one server-side transaction.

Every client is bound to a **session token** minted at
:meth:`~repro.multiuser.server.SeedServer.connect`; the server
authenticates the token on each check-out, check-in, renewal, and
abandon. A handle that outlives its session — its client disconnected,
its session or lease expired, or its client id reconnected and got a
fresh token — fails every operation with
:class:`~repro.core.errors.SessionError` instead of acting on locks it
no longer owns. The same handle class also backs the wire client
(:class:`~repro.multiuser.service.ServiceClient` materializes local
copies through the shared :func:`materialize_ticket`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.core.bulk import load_item_states
from repro.core.database import SeedDatabase
from repro.core.errors import LockError, SeedError
from repro.core.objects import ObjectState, SeedObject
from repro.core.relationships import RelationshipState
from repro.core.schema.schema import Schema
from repro.core.versions.version_id import VersionId
from repro.multiuser.checkin import build_package

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.multiuser.server import CheckOutTicket, SeedServer

__all__ = ["SeedClient", "RetryPolicy", "materialize_ticket"]


@dataclass
class RetryPolicy:
    """Bounded retry for contended check-outs (fail-fast stays default).

    ``attempts`` tries in total, sleeping ``backoff * 2**i`` (capped at
    ``max_backoff``) between them, giving up once ``deadline`` seconds
    have elapsed since the first attempt — or once the *next* backoff
    would carry past the deadline: the policy never sleeps beyond it
    (the PR-7 fix; previously the deadline was only checked after a
    failed attempt, so the final sleep could overshoot it by a whole
    ``max_backoff``). ``sleep``/``clock`` are injectable so tests drive
    a fake clock (shared with the lock table's lease clock) instead of
    wall-clock waiting — a retry loop against an expiring lease then
    reclaims a dead client's locks deterministically.
    """

    attempts: int = 3
    backoff: float = 0.05
    max_backoff: float = 1.0
    deadline: Optional[float] = None
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def delay(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based)."""
        return min(self.max_backoff, self.backoff * (2 ** (attempt - 1)))

    def run(self, operation: Callable[[], "SeedDatabase"]) -> "SeedDatabase":
        """Call *operation* until it stops raising ``LockError``."""
        if self.attempts < 1:
            raise ValueError("RetryPolicy needs at least one attempt")
        started = self.clock()
        for attempt in range(1, self.attempts + 1):
            try:
                return operation()
            except LockError:
                if attempt >= self.attempts:
                    raise
                delay = self.delay(attempt)
                if self.deadline is not None:
                    elapsed = self.clock() - started
                    # give up instead of sleeping past the deadline: a
                    # retry that could only start after it is pointless
                    if elapsed >= self.deadline or (
                        elapsed + delay > self.deadline
                    ):
                        raise
                self.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


def materialize_ticket(
    schema: Schema, name: str, ticket: "CheckOutTicket"
) -> SeedDatabase:
    """A fresh local database holding a check-out ticket's copy set.

    One-shot: the ticket's frozen states are handed to the shared bulk
    state materializer, which wires parents, name index, incidence,
    patterns, and indexes in a single pass (checkout at index-rebuild
    speed — no per-item maintenance). Shared by the in-process client
    and the wire client: the ticket is pure data either way.
    """
    local = SeedDatabase(schema, name)
    load_item_states(
        local,
        iter(ticket.objects),
        iter(ticket.relationships),
        next_id_floor=ticket.next_id_floor,
    )
    local.clear_dirty()
    return local


class SeedClient:
    """One user's session-bound handle on the central database."""

    def __init__(
        self, server: "SeedServer", client_id: str, token: str
    ) -> None:
        self._server = server
        self.client_id = client_id
        #: the session credential; every server operation presents it
        self.token = token
        self._local: Optional[SeedDatabase] = None
        self._baseline_objects: dict[int, ObjectState] = {}
        self._baseline_relationships: dict[int, RelationshipState] = {}

    # -- retrieval ----------------------------------------------------------

    def find_object(self, name: str) -> Optional[SeedObject]:
        """Retrieval against the live central database (read-only use!)."""
        return self._server.find_object(name)

    def snapshot(self, version=None):
        """A pinned MVCC read view (see :meth:`SeedServer.snapshot`)."""
        return self._server.snapshot(version)

    # -- session ------------------------------------------------------------

    def renew(self) -> int:
        """Keep the session and its lock leases (and standing) alive."""
        return self._server.renew(self.token)

    # -- check-out ------------------------------------------------------------

    @property
    def local(self) -> SeedDatabase:
        """The local copy; only available between check-out and check-in."""
        if self._local is None:
            raise SeedError(
                f"client {self.client_id!r} has no checked-out copy"
            )
        return self._local

    @property
    def has_copy(self) -> bool:
        """True while a local copy is checked out."""
        return self._local is not None

    def check_out(
        self, *names: str, retry: Optional[RetryPolicy] = None
    ) -> SeedDatabase:
        """Copy the named objects (closure) for local update.

        The closure comprises the objects' sub-trees, every relationship
        among copied objects, and every pattern a copied object inherits
        (with *its* sub-tree and relationships, recursively) — a copy
        must be self-contained to be checked for consistency locally.
        Write locks are taken centrally under the session token; a
        conflicting check-out raises
        :class:`~repro.core.errors.LockError` with the holder —
        immediately by default, or after the bounded wait of *retry*
        (each attempt re-resolves the closure, so a retry can succeed
        once the holder releases, checks in, or lets its lease expire).
        """
        if retry is not None:
            return retry.run(lambda: self.check_out(*names))
        if self._local is not None:
            raise SeedError(
                f"client {self.client_id!r} already holds a copy; check it "
                "in or abandon it first"
            )
        ticket = self._server.check_out(self.token, names)
        master = self._server.master
        self._local = materialize_ticket(
            master.schema, f"{master.name}@{self.client_id}", ticket
        )
        self._baseline_objects = dict(ticket.objects)
        self._baseline_relationships = dict(ticket.relationships)
        return self._local

    # -- check-in ---------------------------------------------------------------------

    def check_in(self, *, bulk: Optional[bool] = None) -> dict[int, int]:
        """Send the updated copy back; the server applies it atomically.

        Returns the id translation map for locally created items. On
        success the local copy is dropped and all locks are released; on
        failure (consistency violation or stale data) the copy and locks
        survive so the client can repair and retry. ``bulk=True`` forces
        the master's deferred-maintenance bulk path regardless of
        package size (the right call for large ingest-style check-ins);
        ``bulk=False`` forces the per-item transaction; ``None`` lets
        the server's size heuristic decide.
        """
        local = self.local
        package = build_package(
            local, self._baseline_objects, self._baseline_relationships
        )
        translation = self._server.apply_check_in(
            self.token, package, force_bulk=bulk
        )
        self._drop_copy()
        return translation

    def abandon(self) -> None:
        """Discard the local copy and release all locks (nothing applied)."""
        if self._local is None:
            raise SeedError(f"client {self.client_id!r} has no copy to abandon")
        self._server.abandon(self.token)
        self._drop_copy()

    def _drop_copy(self) -> None:
        self._local = None
        self._baseline_objects = {}
        self._baseline_relationships = {}

    # -- local versions ("kept locally under control of the user") -------------------------

    def save_local_version(self, version: Optional[str] = None) -> VersionId:
        """Snapshot the local copy (user-controlled local versions)."""
        return self.local.create_version(version)

    def local_versions(self) -> list[VersionId]:
        """Local snapshots taken during this check-out."""
        return self.local.saved_versions()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "holding copy" if self.has_copy else "idle"
        return f"<SeedClient {self.client_id!r} ({state})>"
