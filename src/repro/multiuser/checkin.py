"""Check-in packages: the updated copy a client sends back to the server.

A package is a pure-data description of what the client changed relative
to its check-out baseline: created items, modified items, deletions.
``apply_to`` replays it against the master database inside the server's
single check-in transaction, translating client-local ids of created
items to fresh master ids.

Packages also serialise (:func:`package_to_dict` /
:func:`package_from_dict`): a journal-bound server appends each package
as a write-ahead ``{"kind": "checkin"}`` delta record before applying
it, making accepted check-ins durable at O(change) cost; the engine
replays the same records on load. ``apply_to`` is deterministic given
the master state (fresh ids come from the master's counter, stale-copy
guards compare full frozen states), which is what makes replay
equivalent to the live application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core import faults
from repro.core.database import SeedDatabase
from repro.core.errors import CheckInError
from repro.core.objects import ObjectState
from repro.core.relationships import RelationshipState
from repro.core.storage.serialize import decode_value, encode_value
from repro.core.versions.store import ItemKey

__all__ = [
    "CheckInPackage",
    "build_package",
    "package_to_dict",
    "package_from_dict",
    "object_state_to_dict",
    "object_state_from_dict",
    "relationship_state_to_dict",
    "relationship_state_from_dict",
]


@dataclass
class CheckInPackage:
    """All changes of one client session, in applicable form."""

    #: (local oid, state) of objects created locally, parents first
    created_objects: list[tuple[int, ObjectState]] = field(default_factory=list)
    #: (local rid, state) of relationships created locally
    created_relationships: list[tuple[int, RelationshipState]] = field(
        default_factory=list
    )
    #: (master oid, before, after) of modified pre-existing objects
    modified_objects: list[tuple[int, ObjectState, ObjectState]] = field(
        default_factory=list
    )
    #: (master rid, before, after) of modified pre-existing relationships
    modified_relationships: list[
        tuple[int, RelationshipState, RelationshipState]
    ] = field(default_factory=list)

    def is_empty(self) -> bool:
        """True when the client changed nothing."""
        return not (
            self.created_objects
            or self.created_relationships
            or self.modified_objects
            or self.modified_relationships
        )

    def changed_existing_keys(self) -> list[ItemKey]:
        """Keys of pre-existing items the package touches (lock check)."""
        keys: list[ItemKey] = [("o", oid) for oid, __, __ in self.modified_objects]
        keys.extend(("r", rid) for rid, __, __ in self.modified_relationships)
        return keys

    # ------------------------------------------------------------------

    def apply_to(self, master: SeedDatabase) -> dict[int, int]:
        """Replay the changes against *master*; returns the id map.

        Must run inside a master transaction (the server guarantees it).
        """
        id_map: dict[int, int] = {}

        def translate(local_id: Optional[int]) -> Optional[int]:
            if local_id is None:
                return None
            return id_map.get(local_id, local_id)

        # 1. created objects, parents before children (ids ascend locally)
        for local_oid, state in sorted(self.created_objects):
            if state.parent_oid is None:
                obj = master.create_object(
                    state.class_name, state.name, pattern=state.is_pattern
                )
            else:
                parent = master.object_by_oid(translate(state.parent_oid))
                obj = master.create_sub_object(
                    parent,
                    state.name,
                    index=state.index if state.index is not None else None,
                )
                if state.is_pattern:
                    master.mark_pattern(obj)
            if state.value is not None:
                master.set_value(obj, state.value)
            id_map[local_oid] = obj.oid
        # 2. created relationships
        for local_rid, state in sorted(self.created_relationships):
            bindings = {
                role: master.object_by_oid(translate(oid))
                for role, oid in state.bindings
            }
            rel = master.relate(
                state.association_name,
                bindings,
                attributes=dict(state.attributes),
                pattern=state.is_pattern,
            )
            id_map[local_rid] = rel.rid
        if faults._PLAN is not None:  # noqa: SLF001 - zero-cost guard
            # mid-apply failpoint: creations done, modifications pending
            faults.fire("checkin.apply.mid")
        # 3. inherits links of created objects (after all objects exist)
        for local_oid, state in self.created_objects:
            if state.inherited_pattern_oids:
                inheritor = master.object_by_oid(id_map[local_oid])
                for pattern_oid in state.inherited_pattern_oids:
                    master.inherit(
                        master.object_by_oid(translate(pattern_oid)), inheritor
                    )
        # 4. modifications of pre-existing objects
        for master_oid, before, after in self.modified_objects:
            obj = master.object_by_oid(master_oid)
            if after.deleted:
                # cascades from earlier deletions in this package may
                # have tombstoned the object already — that is the same
                # outcome, not a conflict
                if not obj.deleted:
                    if obj.freeze() != before:
                        raise CheckInError(
                            f"object #{master_oid} changed on the server "
                            "since check-out (stale copy)"
                        )
                    master.delete(obj)
                continue
            if obj.freeze() != before:
                raise CheckInError(
                    f"object #{master_oid} changed on the server since "
                    "check-out (stale copy)"
                )
            if after.class_name != before.class_name:
                master.reclassify(
                    obj,
                    after.class_name.split(".")[-1]
                    if "." in after.class_name
                    else after.class_name,
                    allow_generalize=True,
                )
            if after.name != before.name and obj.parent is None:
                master.rename(obj, after.name)
            if after.value != before.value:
                master.set_value(obj, after.value)
            if after.is_pattern != before.is_pattern:
                if after.is_pattern:
                    master.mark_pattern(obj)
                else:
                    master.unmark_pattern(obj)
            if after.inherited_pattern_oids != before.inherited_pattern_oids:
                removed = set(before.inherited_pattern_oids) - set(
                    after.inherited_pattern_oids
                )
                added = set(after.inherited_pattern_oids) - set(
                    before.inherited_pattern_oids
                )
                for pattern_oid in removed:
                    master.uninherit(master.object_by_oid(pattern_oid), obj)
                for pattern_oid in added:
                    master.inherit(
                        master.object_by_oid(translate(pattern_oid)), obj
                    )
        # 5. modifications of pre-existing relationships
        for master_rid, before, after in self.modified_relationships:
            rel = master._relationships.get(master_rid)  # noqa: SLF001
            if rel is None:
                raise CheckInError(
                    f"relationship #{master_rid} vanished from the server "
                    "since check-out (stale copy)"
                )
            if after.deleted:
                if not rel.deleted:  # may be gone already via a cascade
                    if rel.freeze() != before:
                        raise CheckInError(
                            f"relationship #{master_rid} changed on the "
                            "server since check-out (stale copy)"
                        )
                    master.delete(rel)
                continue
            if rel.freeze() != before:
                raise CheckInError(
                    f"relationship #{master_rid} changed on the server "
                    "since check-out (stale copy)"
                )
            if after.association_name != before.association_name:
                master.reclassify(rel, after.association_name, allow_generalize=True)
            before_attrs = dict(before.attributes)
            after_attrs = dict(after.attributes)
            for name in set(before_attrs) - set(after_attrs):
                master.set_attribute(rel, name, None)
            for name, value in after_attrs.items():
                if before_attrs.get(name) != value:
                    master.set_attribute(rel, name, value)
        return id_map


# ---------------------------------------------------------------------------
# serialisation (write-ahead check-in deltas)
# ---------------------------------------------------------------------------

def _object_state_to_dict(state: ObjectState) -> dict:
    return {
        "class_name": state.class_name,
        "name": state.name,
        "index": state.index,
        "parent_oid": state.parent_oid,
        "value": encode_value(state.value),
        "deleted": state.deleted,
        "is_pattern": state.is_pattern,
        "inherited_pattern_oids": list(state.inherited_pattern_oids),
    }


def _object_state_from_dict(data: dict) -> ObjectState:
    return ObjectState(
        class_name=data["class_name"],
        name=data["name"],
        index=data["index"],
        parent_oid=data["parent_oid"],
        value=decode_value(data["value"]),
        deleted=data["deleted"],
        is_pattern=data["is_pattern"],
        inherited_pattern_oids=tuple(data["inherited_pattern_oids"]),
    )


def _relationship_state_to_dict(state: RelationshipState) -> dict:
    return {
        "association_name": state.association_name,
        "bindings": [[role, oid] for role, oid in state.bindings],
        "attributes": [
            [name, encode_value(value)] for name, value in state.attributes
        ],
        "deleted": state.deleted,
        "is_pattern": state.is_pattern,
    }


def _relationship_state_from_dict(data: dict) -> RelationshipState:
    return RelationshipState(
        association_name=data["association_name"],
        bindings=tuple((role, oid) for role, oid in data["bindings"]),
        attributes=tuple(
            (name, decode_value(value)) for name, value in data["attributes"]
        ),
        deleted=data["deleted"],
        is_pattern=data["is_pattern"],
    )


# public names: the wire protocol (multiuser.protocol) serializes
# check-out tickets with the same state codecs the journal deltas use
object_state_to_dict = _object_state_to_dict
object_state_from_dict = _object_state_from_dict
relationship_state_to_dict = _relationship_state_to_dict
relationship_state_from_dict = _relationship_state_from_dict


def package_to_dict(package: CheckInPackage) -> dict:
    """JSON-compatible form of a package (the journal delta payload)."""
    return {
        "created_objects": [
            [oid, _object_state_to_dict(state)]
            for oid, state in package.created_objects
        ],
        "created_relationships": [
            [rid, _relationship_state_to_dict(state)]
            for rid, state in package.created_relationships
        ],
        "modified_objects": [
            [oid, _object_state_to_dict(before), _object_state_to_dict(after)]
            for oid, before, after in package.modified_objects
        ],
        "modified_relationships": [
            [
                rid,
                _relationship_state_to_dict(before),
                _relationship_state_to_dict(after),
            ]
            for rid, before, after in package.modified_relationships
        ],
    }


def package_from_dict(data: dict) -> CheckInPackage:
    """Inverse of :func:`package_to_dict` (the journal replay path)."""
    return CheckInPackage(
        created_objects=[
            (oid, _object_state_from_dict(state))
            for oid, state in data["created_objects"]
        ],
        created_relationships=[
            (rid, _relationship_state_from_dict(state))
            for rid, state in data["created_relationships"]
        ],
        modified_objects=[
            (oid, _object_state_from_dict(before), _object_state_from_dict(after))
            for oid, before, after in data["modified_objects"]
        ],
        modified_relationships=[
            (
                rid,
                _relationship_state_from_dict(before),
                _relationship_state_from_dict(after),
            )
            for rid, before, after in data["modified_relationships"]
        ],
    )


def build_package(
    local: SeedDatabase,
    baseline_objects: dict[int, ObjectState],
    baseline_relationships: dict[int, RelationshipState],
) -> CheckInPackage:
    """Diff a client's local copy against its check-out baseline."""
    package = CheckInPackage()
    for obj in local.all_objects_raw():
        state = obj.freeze()
        before = baseline_objects.get(obj.oid)
        if before is None:
            if not state.deleted:  # created-then-deleted never leaves the client
                package.created_objects.append((obj.oid, state))
        elif state != before:
            package.modified_objects.append((obj.oid, before, state))
    for rel in local.all_relationships_raw():
        state = rel.freeze()
        before = baseline_relationships.get(rel.rid)
        if before is None:
            if not state.deleted:
                package.created_relationships.append((rel.rid, state))
        elif state != before:
            package.modified_relationships.append((rel.rid, before, state))
    return package
