"""Multi-user extension: the paper's two-level client/server sketch.

"SEED is currently a single user system only. ... We only have some
rough ideas concerning a two level approach" — this package implements
those ideas: :class:`~repro.multiuser.server.SeedServer` (central
database, write locks, global versions),
:class:`~repro.multiuser.client.SeedClient` (local copies for update,
check-in as one transaction), and the supporting lock table and
check-in packages.
"""

from repro.multiuser.checkin import (
    CheckInPackage,
    build_package,
    package_from_dict,
    package_to_dict,
)
from repro.multiuser.client import RetryPolicy, SeedClient
from repro.multiuser.locks import LockTable
from repro.multiuser.server import SeedServer

__all__ = [
    "CheckInPackage",
    "build_package",
    "package_from_dict",
    "package_to_dict",
    "RetryPolicy",
    "SeedClient",
    "LockTable",
    "SeedServer",
]
