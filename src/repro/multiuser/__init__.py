"""Multi-user extension: the paper's two-level client/server sketch.

"SEED is currently a single user system only. ... We only have some
rough ideas concerning a two level approach" — this package implements
those ideas: :class:`~repro.multiuser.server.SeedServer` (central
database, session tokens, write locks keyed by session, MVCC snapshot
views, global versions), :class:`~repro.multiuser.client.SeedClient`
(local copies for update, check-in as one transaction), the wire
service (:class:`~repro.multiuser.service.SeedService` /
:class:`~repro.multiuser.service.ServiceClient`, JSON lines over a
socket), and the supporting session manager, lock table, and check-in
packages.
"""

from repro.multiuser.checkin import (
    CheckInPackage,
    build_package,
    package_from_dict,
    package_to_dict,
)
from repro.multiuser.client import RetryPolicy, SeedClient, materialize_ticket
from repro.multiuser.locks import LockTable
from repro.multiuser.server import CheckOutTicket, SeedServer
from repro.multiuser.service import SeedService, ServiceClient
from repro.multiuser.sessions import Session, SessionManager

__all__ = [
    "CheckInPackage",
    "build_package",
    "package_from_dict",
    "package_to_dict",
    "RetryPolicy",
    "SeedClient",
    "materialize_ticket",
    "LockTable",
    "CheckOutTicket",
    "SeedServer",
    "SeedService",
    "ServiceClient",
    "Session",
    "SessionManager",
]
