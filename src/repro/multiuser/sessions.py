"""Sessions: authenticated standing on the central server.

The PR-6 sketch identified clients by their bare ``client_id`` string,
which opened two holes the paper's production architecture must close:

* a **zombie** handle — one whose client disconnected, or whose lease
  expired — could still check in *create-only* packages, because the
  held-lock validation only inspects ``changed_existing_keys()``;
* ``connect`` after ``disconnect`` reused the same ``client_id`` as the
  lock-table key, so a stale pre-disconnect handle shared (and its
  check-in released!) the reconnected session's locks.

Both are identity bugs, and the structural fix is the same: every
``connect`` mints a :class:`Session` with a fresh, unguessable **token**,
every check-out / check-in / renewal authenticates the token against the
:class:`SessionManager` first, and the lock table is keyed by token —
never by the reusable client id. A disconnected or lease-expired session
fails validation with :class:`~repro.core.errors.SessionError` before
any package is even inspected, and a reconnected client id gets a new
token, so its predecessor's locks and standing are unreachable.

Sessions share the server's injectable ``clock`` (the lock table's lease
clock), so tests drive expiry deterministically. Token generation is
also injectable; the default combines a monotone counter (uniqueness)
with random hex (unguessability — the authentication stub the ROADMAP
asks for: possession of the token *is* the credential).
"""

from __future__ import annotations

import secrets
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.errors import SessionError

__all__ = ["Session", "SessionManager"]

#: closed sessions retained (FIFO) for precise error messages
_CLOSED_RETAINED = 256


@dataclass
class Session:
    """One authenticated connection of one client."""

    token: str
    client_id: str
    opened_at: float
    #: refreshed on every validated operation (and by ``renew``)
    last_seen: float
    closed: bool = False
    #: operations authenticated against this session (diagnostics)
    operations: int = field(default=0, repr=False)

    def __str__(self) -> str:  # pragma: no cover - trivial
        state = "closed" if self.closed else "live"
        return f"session {self.token!r} of client {self.client_id!r} ({state})"


class SessionManager:
    """Mints, validates, and expires session tokens.

    ``session_seconds`` bounds idleness: a session untouched for longer
    fails validation exactly like a closed one (``None`` = no expiry —
    lock leases still bound the damage a silent client can do). The
    ``clock`` is any ``() -> float``; share it with the lock table so
    one fake clock drives both in tests.
    """

    def __init__(
        self,
        *,
        session_seconds: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        token_factory: Optional[Callable[[str, int], str]] = None,
    ) -> None:
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._live_by_client: dict[str, str] = {}  # client_id -> token
        self._session_seconds = session_seconds
        self._clock = clock if clock is not None else time.monotonic
        self._token_factory = token_factory or self._default_token
        self._minted = 0
        self._closed_retained = 0

    @staticmethod
    def _default_token(client_id: str, serial: int) -> str:
        # serial guarantees uniqueness; the random half is the credential
        return f"s{serial}.{secrets.token_hex(8)}"

    # -- lifecycle ----------------------------------------------------------

    def open(self, client_id: str) -> Session:
        """Mint a session for *client_id*; one live session per id."""
        live = self.find_live(client_id)
        if live is not None:
            raise SessionError(
                f"client id {client_id!r} is already connected "
                f"(token {live.token!r})"
            )
        self._minted += 1
        token = self._token_factory(client_id, self._minted)
        if token in self._sessions:
            raise SessionError(f"token factory repeated token {token!r}")
        now = self._clock()
        session = Session(
            token=token, client_id=client_id, opened_at=now, last_seen=now
        )
        self._sessions[token] = session
        self._live_by_client[client_id] = token
        return session

    def close(self, token: str) -> Session:
        """End a session (idempotent for already-closed tokens)."""
        session = self._sessions.get(token)
        if session is None:
            raise SessionError(f"unknown session token {token!r}")
        if not session.closed:
            session.closed = True
            if self._live_by_client.get(session.client_id) == token:
                del self._live_by_client[session.client_id]
            self._closed_retained += 1
            self._trim_closed()
        return session

    def _trim_closed(self) -> None:
        """Bound memory: drop the oldest closed sessions beyond the cap."""
        if self._closed_retained <= _CLOSED_RETAINED:
            return
        for token in list(self._sessions):
            if self._closed_retained <= _CLOSED_RETAINED:
                break
            if self._sessions[token].closed:
                del self._sessions[token]
                self._closed_retained -= 1

    # -- validation ---------------------------------------------------------

    def _expired(self, session: Session) -> bool:
        return (
            self._session_seconds is not None
            and session.last_seen + self._session_seconds <= self._clock()
        )

    def validate(self, token: str, *, touch: bool = True) -> Session:
        """The live session behind *token*, or :class:`SessionError`.

        Every server operation calls this first — the zombie-client fix:
        a closed or expired session is rejected before the operation's
        own checks (lock validation, package inspection) ever run.
        """
        session = self._sessions.get(token)
        if session is None:
            raise SessionError(f"unknown session token {token!r}")
        if session.closed:
            raise SessionError(
                f"session of client {session.client_id!r} was disconnected; "
                "reconnect for a fresh token"
            )
        if self._expired(session):
            raise SessionError(
                f"session of client {session.client_id!r} expired after "
                f"{self._session_seconds}s idle; reconnect for a fresh token"
            )
        if touch:
            session.last_seen = self._clock()
            session.operations += 1
        return session

    def is_live(self, token: str) -> bool:
        """True when *token* would pass :meth:`validate` right now."""
        session = self._sessions.get(token)
        return (
            session is not None
            and not session.closed
            and not self._expired(session)
        )

    # -- queries ------------------------------------------------------------

    def client_of(self, token: str) -> Optional[str]:
        """The client id behind *token* (live, closed, or expired)."""
        session = self._sessions.get(token)
        return None if session is None else session.client_id

    def find_live(self, client_id: str) -> Optional[Session]:
        """The live unexpired session of *client_id*, if any."""
        token = self._live_by_client.get(client_id)
        if token is None:
            return None
        session = self._sessions[token]
        if self._expired(session):
            return None
        return session

    def live(self) -> list[Session]:
        """All live unexpired sessions, oldest first."""
        return [
            session
            for session in self._sessions.values()
            if not session.closed and not self._expired(session)
        ]

    def __len__(self) -> int:
        return len(self.live())
