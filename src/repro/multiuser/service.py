"""The networked multi-user service: many clients, one central server.

:class:`SeedService` exposes a :class:`~repro.multiuser.server.SeedServer`
over a socket (JSON-lines protocol, :mod:`repro.multiuser.protocol`) on
an asyncio event loop. The concurrency model mirrors the paper's
two-level sketch:

* **writes are serialized** — connect/disconnect, check-out, check-in,
  abandon, and snapshot publication queue on one ``asyncio.Lock``; the
  master database is single-writer by construction;
* **reads never wait for writers** — retrieval runs against *pinned
  snapshot views* (fully materialized, immutable
  :class:`~repro.core.versions.view.VersionView` objects), so a reader
  holding a pin keeps getting consistent answers while a check-in —
  even a large ``bulk()`` batch — is applying. The check-in itself runs
  in a thread executor, so the event loop keeps answering reads
  mid-apply;
* **maintenance runs between check-ins** — every ``maintain_every``
  accepted check-ins the service queues a background
  :meth:`~repro.multiuser.server.SeedServer.maintain` pass (compaction
  + tombstone GC) on the same write lock, with every pinned snapshot
  protected.

Sessions close with their socket: a connection dropping (client crash,
network cut) closes every session it opened, releasing locks — the
detectable half of zombie handling; lease expiry covers the silent
half. A session token is only honoured on the connection that minted
it would be stricter than the paper needs — tokens are the credential,
so any connection may present one (the in-process tests do).

:class:`ServiceClient` is the blocking wire client: the same check-out /
work-local / check-in surface as the in-process
:class:`~repro.multiuser.client.SeedClient`, materializing its local
copy from the wire ticket through the shared
:func:`~repro.multiuser.client.materialize_ticket`.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Any, Optional

from repro.core.database import SeedDatabase
from repro.core.errors import SeedError
from repro.core.schema.schema import Schema
from repro.core.storage.serialize import decode_value, encode_value
from repro.core.versions.compaction import RetentionPolicy
from repro.multiuser.checkin import (
    build_package,
    package_from_dict,
    package_to_dict,
)
from repro.multiuser.client import RetryPolicy, materialize_ticket
from repro.multiuser.protocol import (
    decode_message,
    encode_message,
    error_response,
    ok_response,
    raise_remote_error,
    ticket_from_dict,
    ticket_to_dict,
)
from repro.multiuser.server import SeedServer

__all__ = ["SeedService", "ServiceClient"]

#: accepted check-ins between background maintenance passes (0 = never)
DEFAULT_MAINTAIN_EVERY = 8


def _view_object_summary(obj) -> dict[str, Any]:
    """The JSON summary of one snapshot-view object."""
    return {
        "oid": obj.oid,
        "name": str(obj.name),
        "class_name": obj.class_name,
        "value": encode_value(obj.value),
        "is_pattern": obj.is_pattern,
    }


class SeedService:
    """Serve a :class:`SeedServer` to concurrent wire clients."""

    def __init__(
        self,
        server: SeedServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        maintain_every: int = DEFAULT_MAINTAIN_EVERY,
        maintenance_policy: Optional[RetentionPolicy] = None,
    ) -> None:
        self.server = server
        self.host = host
        self.port = port  # 0 = ephemeral; real port known after start()
        self.maintain_every = maintain_every
        self.maintenance_policy = maintenance_policy
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._write_lock: Optional[asyncio.Lock] = None
        self._maintenance_task: Optional[asyncio.Task] = None
        self._accepted_since_maintain = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._connections: set[asyncio.Task] = set()
        # -- service counters (stats op / `repro serve` log) --
        self.requests_served = 0
        self.reads_served = 0
        self.maintenance_scheduled = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (ephemeral port resolved)."""
        if self._asyncio_server is not None:
            raise SeedError("service is already started")
        self._loop = asyncio.get_running_loop()
        self._write_lock = asyncio.Lock()
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]

    async def stop(
        self,
        *,
        drain_timeout_s: Optional[float] = None,
        final_checkpoint: bool = False,
    ) -> None:
        """Graceful shutdown: refuse, drain, optionally flush, close.

        New connections are refused first; then in-flight work is
        drained by waiting for pending maintenance and acquiring the
        write lock (holding it proves no check-in or maintenance pass
        is mid-apply). *drain_timeout_s* bounds each wait so a hung
        apply cannot wedge shutdown — on timeout the work is abandoned
        (its executor thread finishes on its own; the master rolls back
        on failure as usual, and an un-acked check-in's journal record
        replays on the next open). A drained journal-bound server
        always flushes the group-commit buffer — shutdown is a hard
        durability barrier, so buffered commits are never lost to a
        clean stop even without a checkpoint. With *final_checkpoint*,
        it additionally appends a final checkpoint and compacts the
        journal before the remaining connections are closed — the
        ``repro serve`` SIGTERM/SIGINT path.
        """
        if self._asyncio_server is None:
            return
        # refuse new connections; in-flight requests keep running
        self._asyncio_server.close()
        await self._asyncio_server.wait_closed()
        self._asyncio_server = None
        if self._maintenance_task is not None:
            try:
                if drain_timeout_s is None:
                    await self._maintenance_task
                else:
                    await asyncio.wait_for(
                        self._maintenance_task, drain_timeout_s
                    )
            except (asyncio.TimeoutError, asyncio.CancelledError):
                pass  # pragma: no cover - hung/raced maintenance
            self._maintenance_task = None
        drained = True
        try:
            if drain_timeout_s is None:
                await self._write_lock.acquire()
            else:
                await asyncio.wait_for(
                    self._write_lock.acquire(), drain_timeout_s
                )
        except asyncio.TimeoutError:  # pragma: no cover - hung apply
            drained = False
        try:
            if drained and self.server.journal is not None:
                if final_checkpoint:
                    await asyncio.get_running_loop().run_in_executor(
                        None, self._final_flush
                    )
                else:
                    # shutdown drain is a durability barrier even
                    # without a checkpoint: flush buffered group
                    # commits so a clean stop never loses them
                    await asyncio.get_running_loop().run_in_executor(
                        None, self.server.journal.flush
                    )
        finally:
            if drained:
                self._write_lock.release()
        # connections still open (clients that never closed their
        # socket): cancel their handlers so session cleanup runs now
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    def _final_flush(self) -> None:
        """Checkpoint and compact the journal (shutdown, in executor)."""
        journal = self.server.journal
        journal.checkpoint()
        journal.compact()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled — the CLI path."""
        if self._asyncio_server is None:
            await self.start()
        await self._asyncio_server.serve_forever()

    # Thread-hosted lifecycle: tests and sync callers run the event loop
    # in a daemon thread and drive it with blocking wire clients.

    def start_in_thread(self) -> "SeedService":
        """Run the service on a fresh event loop in a background thread."""
        if self._thread is not None:
            raise SeedError("service thread is already running")
        loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # pragma: no cover - bind failure
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop())
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="seed-service", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:  # pragma: no cover - bind failure
            self._thread = None
            raise failure[0]
        return self

    def stop_in_thread(self) -> None:
        """Stop the thread-hosted service and join the thread."""
        if self._thread is None or self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "SeedService":
        return self.start_in_thread()

    def __exit__(self, *exc_info) -> None:
        self.stop_in_thread()

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) the service is listening on."""
        return (self.host, self.port)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        opened_tokens: set[str] = set()
        self._connections.add(asyncio.current_task())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break  # EOF: client closed (or crashed)
                try:
                    request = decode_message(line)
                    response = await self._dispatch(request, opened_tokens)
                except SeedError as exc:
                    response = error_response(exc)
                except Exception as exc:  # pragma: no cover - defensive
                    response = error_response(SeedError(str(exc)))
                self.requests_served += 1
                writer.write(encode_message(response))
                await writer.drain()
        except asyncio.CancelledError:
            pass  # service shutdown: fall through to session cleanup
        finally:
            self._connections.discard(asyncio.current_task())
            # a dropped socket closes every session it opened: the
            # detectable zombie — its locks and standing are released
            # now rather than waiting for the lease to lapse
            zombies = [
                token
                for token in opened_tokens
                if self.server.sessions.is_live(token)
            ]
            if zombies:
                async with self._write_lock:
                    for token in zombies:
                        if self.server.sessions.is_live(token):
                            self.server.close_session(token)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(
        self, request: dict[str, Any], opened_tokens: set[str]
    ) -> dict[str, Any]:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if op else None
        if handler is None:
            raise SeedError(f"unknown operation {op!r}")
        return await handler(request, opened_tokens)

    @staticmethod
    def _token(request: dict[str, Any]) -> str:
        token = request.get("token")
        if not isinstance(token, str) or not token:
            raise SeedError(
                f"operation {request.get('op')!r} needs a session token"
            )
        return token

    # -- session ops (serialized writers) ------------------------------------

    async def _op_ping(self, request, opened_tokens) -> dict[str, Any]:
        return ok_response({"pong": True})

    async def _op_connect(self, request, opened_tokens) -> dict[str, Any]:
        client_id = request.get("client_id")
        if not isinstance(client_id, str) or not client_id:
            raise SeedError("connect needs a non-empty client_id")
        async with self._write_lock:
            session = self.server.open_session(client_id)
        opened_tokens.add(session.token)
        return ok_response({"token": session.token})

    async def _op_disconnect(self, request, opened_tokens) -> dict[str, Any]:
        token = self._token(request)
        async with self._write_lock:
            self.server.close_session(token)
        opened_tokens.discard(token)
        return ok_response({"closed": True})

    async def _op_renew(self, request, opened_tokens) -> dict[str, Any]:
        token = self._token(request)
        async with self._write_lock:
            renewed = self.server.renew(token)
        return ok_response({"renewed": renewed})

    # -- check-out / check-in (serialized writers) ---------------------------

    async def _op_check_out(self, request, opened_tokens) -> dict[str, Any]:
        token = self._token(request)
        names = request.get("names", [])
        async with self._write_lock:
            ticket = self.server.check_out(token, names)
        return ok_response({"ticket": ticket_to_dict(ticket)})

    async def _op_check_in(self, request, opened_tokens) -> dict[str, Any]:
        token = self._token(request)
        package = package_from_dict(request["package"])
        bulk = request.get("bulk")
        loop = asyncio.get_running_loop()
        async with self._write_lock:
            # apply in the executor: the event loop stays free to serve
            # pinned snapshot reads while the master mutates
            translation = await loop.run_in_executor(
                None,
                lambda: self.server.apply_check_in(
                    token, package, force_bulk=bulk
                ),
            )
            version = await loop.run_in_executor(
                None, self.server.publish_snapshot
            )
        self._accepted_since_maintain += 1
        if (
            self.maintain_every
            and self._accepted_since_maintain >= self.maintain_every
        ):
            self._accepted_since_maintain = 0
            self._queue_maintenance()
        return ok_response(
            {
                "translation": [
                    [local, master] for local, master in translation.items()
                ],
                "version": str(version),
            }
        )

    async def _op_abandon(self, request, opened_tokens) -> dict[str, Any]:
        token = self._token(request)
        async with self._write_lock:
            self.server.abandon(token)
        return ok_response({"abandoned": True})

    # -- MVCC reads (never queue on the write lock) --------------------------

    async def _op_pin(self, request, opened_tokens) -> dict[str, Any]:
        """Publish-or-reuse the current snapshot; returns its version.

        Publication may create a version (a write), so it serializes
        with the writers; subsequent ``read`` ops against the pinned
        version run lock-free.
        """
        async with self._write_lock:
            version = self.server.publish_snapshot()
        return ok_response({"version": str(version)})

    async def _op_read(self, request, opened_tokens) -> dict[str, Any]:
        version = request.get("version")
        if not version:
            raise SeedError("read needs a pinned snapshot version (pin first)")
        # cached-only: a read never materializes a view concurrently
        # with a writer; an evicted pin errors and the client re-pins
        view = self.server.snapshot(version, build=False)
        query = request.get("query") or {}
        kind = query.get("kind")
        self.reads_served += 1
        if kind == "find":
            obj = view.find(query["name"])
            found = None if obj is None else _view_object_summary(obj)
            return ok_response({"object": found})
        if kind == "objects":
            objects = view.objects(query.get("class_name"))
            return ok_response(
                {"objects": [_view_object_summary(obj) for obj in objects]}
            )
        if kind == "count":
            return ok_response(
                {
                    "objects": view.object_count(),
                    "relationships": view.relationship_count(),
                }
            )
        raise SeedError(f"unknown read kind {kind!r}")

    async def _op_stats(self, request, opened_tokens) -> dict[str, Any]:
        server = self.server
        published = server.latest_snapshot()
        return ok_response(
            {
                "clients": server.clients(),
                "live_sessions": len(server.sessions),
                "live_locks": len(server.locks),
                "checkins_applied": server.checkins_applied,
                "checkins_rejected": server.checkins_rejected,
                "maintenance_runs": server.maintenance_runs,
                "requests_served": self.requests_served,
                "reads_served": self.reads_served,
                "published": None if published is None else str(published),
                "pinned": server.pinned_snapshots(),
            }
        )

    # -- background maintenance ----------------------------------------------

    def _queue_maintenance(self) -> None:
        """Queue a compaction pass on the write lock (between check-ins)."""
        if self._maintenance_task is not None and not self._maintenance_task.done():
            return  # one pass at a time; the next check-in re-queues
        self.maintenance_scheduled += 1
        self._maintenance_task = asyncio.get_running_loop().create_task(
            self._run_maintenance()
        )

    async def _run_maintenance(self) -> None:
        loop = asyncio.get_running_loop()
        async with self._write_lock:
            await loop.run_in_executor(
                None, lambda: self.server.maintain(self.maintenance_policy)
            )


# ---------------------------------------------------------------------------
# the blocking wire client
# ---------------------------------------------------------------------------

class ServiceClient:
    """A client of a remote :class:`SeedService` (blocking socket).

    The update surface mirrors the in-process
    :class:`~repro.multiuser.client.SeedClient`: ``connect`` mints the
    session, ``check_out`` materializes a local
    :class:`~repro.core.database.SeedDatabase` copy from the wire
    ticket, ``check_in`` diffs it against the baseline and ships the
    package (``bulk=True`` forces the server's bulk apply path). The
    read surface is MVCC: ``pin`` publishes-or-reuses a snapshot and
    subsequent ``find``/``objects``/``counts`` answer from that pinned
    version until ``pin`` is called again — consistent-as-of-pin by
    construction. One socket per client; instances are not shared
    across threads (each worker opens its own).
    """

    def __init__(
        self,
        host: str,
        port: int,
        schema: Schema,
        *,
        client_id: Optional[str] = None,
        timeout: Optional[float] = 30.0,
    ) -> None:
        self.schema = schema
        self.client_id = client_id
        self.token: Optional[str] = None
        self.pinned: Optional[str] = None
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._local: Optional[SeedDatabase] = None
        self._baseline_objects: dict = {}
        self._baseline_relationships: dict = {}
        if client_id is not None:
            self.connect(client_id)

    @classmethod
    def for_service(
        cls, service: SeedService, client_id: Optional[str] = None, **kwargs
    ) -> "ServiceClient":
        """Connect to a started (possibly thread-hosted) service."""
        host, port = service.address
        return cls(
            host, port, service.server.master.schema,
            client_id=client_id, **kwargs,
        )

    # -- wire plumbing -------------------------------------------------------

    def _call(self, op: str, **params: Any) -> dict[str, Any]:
        request = {"op": op, **params}
        if self.token is not None and "token" not in request:
            request["token"] = self.token
        self._file.write(encode_message(request))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise SeedError("service closed the connection")
        response = decode_message(line)
        if not response.get("ok"):
            raise_remote_error(response)
        return response["result"]

    def close(self) -> None:
        """Close the socket (the service closes the session with it)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- session -------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._call("ping").get("pong"))

    def connect(self, client_id: str) -> str:
        """Open the session; returns (and stores) the token credential."""
        result = self._call("connect", client_id=client_id)
        self.client_id = client_id
        self.token = result["token"]
        return self.token

    def disconnect(self) -> None:
        """Close the session (locks released, standing dropped)."""
        self._call("disconnect")
        self.token = None
        self._drop_copy()

    def renew(self) -> int:
        """Keep the session, its lock leases, and standing alive."""
        return self._call("renew")["renewed"]

    # -- check-out / check-in ------------------------------------------------

    @property
    def has_copy(self) -> bool:
        return self._local is not None

    @property
    def local(self) -> SeedDatabase:
        if self._local is None:
            raise SeedError(
                f"client {self.client_id!r} has no checked-out copy"
            )
        return self._local

    def check_out(
        self, *names: str, retry: Optional[RetryPolicy] = None
    ) -> SeedDatabase:
        """Copy the named objects' closure for local update (see
        :meth:`SeedClient.check_out <repro.multiuser.client.SeedClient.check_out>`)."""
        if retry is not None:
            return retry.run(lambda: self.check_out(*names))
        if self._local is not None:
            raise SeedError(
                f"client {self.client_id!r} already holds a copy; check it "
                "in or abandon it first"
            )
        result = self._call("check_out", names=list(names))
        ticket = ticket_from_dict(result["ticket"])
        self._local = materialize_ticket(
            self.schema, f"wire@{self.client_id}", ticket
        )
        self._baseline_objects = dict(ticket.objects)
        self._baseline_relationships = dict(ticket.relationships)
        return self._local

    def check_in(self, *, bulk: Optional[bool] = None) -> dict[int, int]:
        """Ship the updated copy; returns the local->master id map."""
        local = self.local
        package = build_package(
            local, self._baseline_objects, self._baseline_relationships
        )
        result = self._call(
            "check_in", package=package_to_dict(package), bulk=bulk
        )
        self._drop_copy()
        return {local_id: master_id for local_id, master_id in result["translation"]}

    def abandon(self) -> None:
        """Discard the copy, release the locks (nothing applied)."""
        if self._local is None:
            raise SeedError(
                f"client {self.client_id!r} has no copy to abandon"
            )
        self._call("abandon")
        self._drop_copy()

    def _drop_copy(self) -> None:
        self._local = None
        self._baseline_objects = {}
        self._baseline_relationships = {}

    # -- MVCC reads ----------------------------------------------------------

    def pin(self) -> str:
        """Pin the current published snapshot; reads answer from it."""
        self.pinned = self._call("pin")["version"]
        return self.pinned

    def _read(self, query: dict[str, Any]) -> dict[str, Any]:
        if self.pinned is None:
            self.pin()
        return self._call("read", version=self.pinned, query=query)

    def find(self, name: str) -> Optional[dict[str, Any]]:
        """The pinned view's object summary for *name* (or None)."""
        found = self._read({"kind": "find", "name": name})["object"]
        if found is not None:
            found["value"] = decode_value(found["value"])
        return found

    def objects(self, class_name: Optional[str] = None) -> list[dict[str, Any]]:
        """Summaries of the pinned view's objects (optionally by class)."""
        objects = self._read(
            {"kind": "objects", "class_name": class_name}
        )["objects"]
        for obj in objects:
            obj["value"] = decode_value(obj["value"])
        return objects

    def counts(self) -> tuple[int, int]:
        """(objects, relationships) in the pinned view."""
        result = self._read({"kind": "count"})
        return result["objects"], result["relationships"]

    def stats(self) -> dict[str, Any]:
        """Service counters (diagnostics)."""
        return self._call("stats")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "holding copy" if self.has_copy else "idle"
        return f"<ServiceClient {self.client_id!r} ({state})>"
