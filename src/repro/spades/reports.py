"""Reports over a SPADES workspace: history, structure, figures.

These renderers produce the human-readable artefacts an analyst asks a
specification tool for — and they double as the figure re-generators of
the benchmark harness (figure 1's object/relationship structure, figure
4's version clusters).
"""

from __future__ import annotations

from typing import Optional

from repro.core.database import SeedDatabase
from repro.core.objects import SeedObject
from repro.core.versions.version_id import VersionId
from repro.spades.tool import SpadesTool

__all__ = [
    "render_object_tree",
    "render_database_figure",
    "render_version_history",
    "render_workspace_summary",
]


def render_object_tree(obj: SeedObject, *, show_values: bool = True) -> str:
    """Indented rendering of one object with all its sub-objects.

    Reproduces the containment half of figure 1: the object, its
    dependent objects, and their values.
    """
    lines: list[str] = []

    def walk(node: SeedObject, depth: int) -> None:
        label = str(node.own_part) if depth else str(node.name)
        suffix = ""
        if show_values and node.value is not None:
            rendered = node.entity_class.value_sort.format(node.value)
            suffix = f' = "{rendered}"'
        lines.append("  " * depth + f"{label}: {node.entity_class.full_name}{suffix}")
        for child in sorted(
            node.sub_objects(), key=lambda c: (c.simple_name, c.index or 0)
        ):
            walk(child, depth + 1)

    walk(obj, 0)
    return "\n".join(lines)


def render_database_figure(db: SeedDatabase) -> str:
    """Objects and relationships of the whole database, figure-1 style."""
    sections: list[str] = []
    for obj in sorted(
        db.objects(independent_only=True), key=lambda o: o.simple_name
    ):
        sections.append(render_object_tree(obj))
    relationship_lines = []
    for rel in db.relationships():
        bindings = ", ".join(
            f"{role}: {bound.simple_name}" for role, bound in rel.bindings().items()
        )
        attributes = rel.attributes()
        suffix = f" {attributes}" if attributes else ""
        relationship_lines.append(f"{rel.association_name}({bindings}){suffix}")
    if relationship_lines:
        sections.append("\n".join(sorted(relationship_lines)))
    return "\n\n".join(sections)


def render_version_history(
    db: SeedDatabase, name: Optional[str] = None
) -> str:
    """The version tree, or one object's version cluster (figure 4a).

    With *name*, each stored version of the object and its sub-objects
    is listed — the "cluster of ovals" of figure 4a.
    """
    if name is None:
        return db.versions.tree.render()
    lines: list[str] = [f"versions of {name}:"]
    obj = db.find_object(name)
    oids: list[tuple[str, int]] = []
    if obj is not None:
        oids = [(str(node.name), node.oid) for node in obj.walk()]
    else:  # search saved versions for a deleted/renamed object
        for version in db.saved_versions():
            view = db.version_view(version)
            found = view.find(name)
            if found is not None:
                oids = [(str(found.name), found.oid)]
                break
    for item_name, oid in oids:
        entries = db.history.versions_of_item(("o", oid))
        for entry in entries:
            marker = " (deleted)" if entry.deleted else ""
            value = getattr(entry.state, "value", None)
            rendered = f' = "{value}"' if value is not None else ""
            lines.append(f"  {item_name} @ {entry.version}{rendered}{marker}")
        if db.has_unsaved_changes():
            live = db.object_by_oid(oid)
            if not live.deleted:
                rendered = f' = "{live.value}"' if live.value is not None else ""
                lines.append(f"  {item_name} @ Current{rendered}")
    return "\n".join(lines)


def render_workspace_summary(tool: SpadesTool) -> str:
    """One-screen summary: statistics, gaps, flows, structure."""
    db = tool.db
    stats = db.statistics()
    report = tool.completeness_report()
    parts = [
        f"workspace {db.name!r}: {stats['objects']} objects, "
        f"{stats['relationships']} relationships, "
        f"{stats['saved_versions']} saved versions",
        f"completeness: {report.summary()}",
    ]
    flows = tool.dataflow_report()
    if flows:
        parts.append("dataflows:")
        parts.extend(f"  {line}" for line in flows)
    structure = tool.structure_report()
    if structure:
        parts.append("action structure:")
        parts.extend(f"  {line}" for line in structure)
    return "\n".join(parts)
