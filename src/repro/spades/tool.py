"""A miniature SPADES: the specification tool driving the SEED database.

This is the application layer the paper's "State of work" section talks
about ("A prototype of SEED is operational. It is currently being
integrated into the specification system SPADES"). The tool exposes the
operations a specification analyst performs, each mapped onto the SEED
operational interface:

* **vague entry** — :meth:`note_thing`, :meth:`note_dataflow` store
  statements as imprecise as "there is a thing called Alarms" /
  "AlarmHandler accesses Alarms somehow";
* **refinement** — :meth:`refine_to_data`, :meth:`refine_to_output`,
  :meth:`refine_flow_to_write`, ... move items down the generalization
  hierarchies as knowledge firms up;
* **structure** — declare actions/data/modules, decompose actions,
  connect dataflows and control flow, annotate;
* **sessions** — :meth:`begin_session` / :meth:`end_session` snapshot
  the database before and after a working session ("short term
  logging, e.g. saving the database state before and after a session");
* **exploration** — :meth:`explore_alternative` rebases on a historical
  version; :meth:`release` requires completeness and snapshots a
  long-term version;
* **reporting** — :meth:`completeness_report`, :meth:`dataflow_report`.
"""

from __future__ import annotations

import datetime
from typing import Optional

from repro.core.completeness import CompletenessReport
from repro.core.database import SeedDatabase
from repro.core.errors import SeedError
from repro.core.objects import SeedObject
from repro.core.relationships import SeedRelationship
from repro.core.versions.version_id import VersionId
from repro.spades.model import spades_schema

__all__ = ["SpadesTool"]


class SpadesTool:
    """A specification workspace backed by a SEED database."""

    def __init__(self, name: str = "spec", db: Optional[SeedDatabase] = None) -> None:
        self.db = db if db is not None else SeedDatabase(spades_schema(), name)
        self._session_open = False

    # ------------------------------------------------------------------
    # vague entry
    # ------------------------------------------------------------------

    def note_thing(self, name: str, note: Optional[str] = None) -> SeedObject:
        """Record "there is a thing called *name*" — maximal vagueness."""
        thing = self.db.create_object("Thing", name)
        if note:
            thing.add_sub_object("Note", note)
        return thing

    def note_dataflow(self, data_name: str, action_name: str) -> SeedRelationship:
        """Record "there is *some* dataflow between data and action".

        This is exactly the paper's motivating example (1): without the
        generalized ``Access`` association, this vague statement could
        not be stored at all. Naming an item as the data (or action) side
        of a flow is itself information, so endpoints still classified as
        plain ``Thing`` are refined to ``Data``/``Action`` in the same
        transaction — the paper's "re-classifying 'Alarms' in class
        'Data' and introducing an 'Access'-relationship" step.
        """
        data = self.db.get_object(data_name)
        action = self.db.get_object(action_name)
        with self.db.transaction():
            if data.class_name == "Thing":
                data.reclassify("Data")
            if action.class_name == "Thing":
                action.reclassify("Action")
            return self.db.relate("Access", data=data, by=action)

    # ------------------------------------------------------------------
    # precise entry
    # ------------------------------------------------------------------

    def declare_action(self, name: str, description: Optional[str] = None) -> SeedObject:
        """Create an ``Action``; its description may arrive later."""
        action = self.db.create_object("Action", name)
        if description is not None:
            action.add_sub_object("Description", description)
        return action

    def declare_data(self, name: str, *, direction: Optional[str] = None) -> SeedObject:
        """Create a ``Data`` object (or ``InputData``/``OutputData``).

        *direction* is ``None``, ``"input"``, or ``"output"``.
        """
        class_name = {
            None: "Data",
            "input": "InputData",
            "output": "OutputData",
        }.get(direction)
        if class_name is None:
            raise SeedError(f"unknown data direction {direction!r}")
        return self.db.create_object(class_name, name)

    def declare_module(self, name: str, language: Optional[str] = None) -> SeedObject:
        """Create a design ``Module``."""
        module = self.db.create_object("Module", name)
        if language is not None:
            module.add_sub_object("Language", language)
        return module

    def read_flow(self, data_name: str, action_name: str) -> SeedRelationship:
        """Record that *action* reads *data* (data must be input-capable)."""
        return self.db.relate(
            "Read",
            {
                "from": self.db.get_object(data_name),
                "by": self.db.get_object(action_name),
            },
        )

    def write_flow(
        self,
        data_name: str,
        action_name: str,
        *,
        times: Optional[int] = None,
        error_handling: Optional[str] = None,
    ) -> SeedRelationship:
        """Record that *action* writes *data*, with optional refinements."""
        rel = self.db.relate(
            "Write",
            {
                "to": self.db.get_object(data_name),
                "by": self.db.get_object(action_name),
            },
        )
        if times is not None:
            rel.set_attribute("NumberOfWrites", times)
        if error_handling is not None:
            rel.set_attribute("ErrorHandling", error_handling)
        return rel

    def decompose(self, container_name: str, *contained_names: str) -> list[SeedRelationship]:
        """Place actions inside a container action (ACYCLIC tree)."""
        container = self.db.get_object(container_name)
        return [
            self.db.relate(
                "Contained",
                contained=self.db.get_object(name),
                container=container,
            )
            for name in contained_names
        ]

    def trigger(self, trigger_name: str, triggered_name: str) -> SeedRelationship:
        """Record control flow: *trigger* activates *triggered*."""
        return self.db.relate(
            "Triggers",
            trigger=self.db.get_object(trigger_name),
            triggered=self.db.get_object(triggered_name),
        )

    def allocate(self, action_name: str, module_name: str) -> SeedRelationship:
        """Allocate an action to a design module."""
        return self.db.relate(
            "AllocatedTo",
            action=self.db.get_object(action_name),
            module=self.db.get_object(module_name),
        )

    def annotate(self, name: str, note: str) -> SeedObject:
        """Attach a free-text note to any specification item."""
        return self.db.get_object(name).add_sub_object("Note", note)

    def set_revised(self, name: str, on: datetime.date) -> None:
        """Stamp an item's revision date."""
        obj = self.db.get_object(name)
        revised = obj.find_sub_object("Revised")
        if revised is None:
            obj.add_sub_object("Revised", on)
        else:
            revised.set_value(on)

    # ------------------------------------------------------------------
    # refinement (vague -> precise)
    # ------------------------------------------------------------------

    def refine_to_data(self, name: str) -> SeedObject:
        """A ``Thing`` turns out to be data."""
        return self.db.get_object(name).reclassify("Data")

    def refine_to_action(self, name: str, description: Optional[str] = None) -> SeedObject:
        """A ``Thing`` turns out to be an action."""
        action = self.db.get_object(name).reclassify("Action")
        if description is not None:
            action.add_sub_object("Description", description)
        return action

    def refine_to_input(self, name: str) -> SeedObject:
        """``Data`` (or ``Thing``) turns out to be an input."""
        obj = self.db.get_object(name)
        flows = self._access_flows_of(obj)
        with self.db.transaction():
            obj.reclassify("InputData")
            for flow in flows:
                if flow.association_name == "Access":
                    flow.reclassify("Read")
        return obj

    def refine_to_output(self, name: str) -> SeedObject:
        """``Data`` (or ``Thing``) turns out to be an output.

        Vague ``Access`` flows on the object become ``Write`` flows in
        the same transaction — the combination is only consistent as a
        unit (``Write.to`` requires an ``OutputData``).
        """
        obj = self.db.get_object(name)
        flows = self._access_flows_of(obj)
        with self.db.transaction():
            obj.reclassify("OutputData")
            for flow in flows:
                if flow.association_name == "Access":
                    flow.reclassify("Write")
        return obj

    def refine_flow_to_read(self, flow: SeedRelationship) -> SeedRelationship:
        """An ``Access`` turns out to be a read."""
        return flow.reclassify("Read")

    def refine_flow_to_write(
        self,
        flow: SeedRelationship,
        *,
        times: Optional[int] = None,
        error_handling: Optional[str] = None,
    ) -> SeedRelationship:
        """An ``Access`` turns out to be a write (with optional detail)."""
        flow.reclassify("Write")
        if times is not None:
            flow.set_attribute("NumberOfWrites", times)
        if error_handling is not None:
            flow.set_attribute("ErrorHandling", error_handling)
        return flow

    def _access_flows_of(self, obj: SeedObject) -> list[SeedRelationship]:
        return self.db.relationships_of_object(obj, association="Access")

    # ------------------------------------------------------------------
    # sessions, versions, exploration
    # ------------------------------------------------------------------

    def begin_session(self) -> Optional[VersionId]:
        """Snapshot the state before a working session (when dirty)."""
        if self._session_open:
            raise SeedError("a session is already open")
        self._session_open = True
        if self.db.has_unsaved_changes():
            return self.db.create_version()
        return None

    def end_session(self) -> Optional[VersionId]:
        """Snapshot the state after the session (when changed)."""
        if not self._session_open:
            raise SeedError("no session is open")
        self._session_open = False
        if self.db.has_unsaved_changes():
            return self.db.create_version()
        return None

    def explore_alternative(self, version: str | VersionId) -> VersionId:
        """Rebase the workspace on a historical version (design space
        exploration / undoing errors).

        Unsaved work is snapshotted first so nothing is lost.
        """
        if self.db.has_unsaved_changes():
            self.db.create_version()
        return self.db.select_version(version)

    def release(self, version: Optional[str] = None) -> VersionId:
        """Long-term snapshot of a *complete* specification.

        Raises :class:`~repro.core.errors.CompletenessError` while the
        specification still has gaps — "eventually, the result must be
        sufficiently formal, complete, and precise".
        """
        self.db.require_complete()
        return self.db.create_version(version)

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------

    def completeness_report(self) -> CompletenessReport:
        """What is still missing before the spec can be released?"""
        return self.db.check_completeness()

    def dataflow_report(self) -> list[str]:
        """One line per dataflow, vague flows marked as such."""
        lines = []
        for rel in self.db.relationships("Access"):
            kind = rel.association_name
            data, action = rel.bound_at(0), rel.bound_at(1)
            if kind == "Access":
                lines.append(f"? {action.simple_name} accesses {data.simple_name}")
            elif kind == "Read":
                lines.append(f"R {action.simple_name} reads {data.simple_name}")
            else:
                times = rel.attribute("NumberOfWrites")
                suffix = f" x{times}" if times is not None else ""
                lines.append(
                    f"W {action.simple_name} writes {data.simple_name}{suffix}"
                )
        return sorted(lines)

    def structure_report(self) -> list[str]:
        """The action decomposition tree as indented lines."""
        contained_by: dict[int, list[SeedObject]] = {}
        roots = []
        for action in self.db.objects("Action"):
            containers = action.related("Contained", "container")
            if containers:
                contained_by.setdefault(containers[0].oid, []).append(action)
            else:
                roots.append(action)
        lines: list[str] = []

        def walk(action: SeedObject, depth: int) -> None:
            lines.append("  " * depth + action.simple_name)
            for child in sorted(
                contained_by.get(action.oid, ()), key=lambda a: a.simple_name
            ):
                walk(child, depth + 1)

        for root in sorted(roots, key=lambda a: a.simple_name):
            walk(root, 0)
        return lines
