"""The SPADES specification model as a SEED schema.

SPADES (Ludewig et al., ICSE 1985) is the specification and design
system SEED was built for; its prototype used SEED as database. The
original is proprietary and long gone, so this module defines a faithful
miniature of its data model as a SEED schema — the substitution
documented in DESIGN.md. The model follows the paper's own running
example (figures 1–3):

* ``Thing`` — the most general category, for statements as vague as
  "there is a thing called Alarms"; carries a ``Revised`` DATE, a
  free-text ``Note`` collection, and a ``Deadline`` (the paper's
  pattern example uses specification deadlines);
* ``Data`` (→ ``InputData`` / ``OutputData``) with the figure-2
  ``Text``/``Body``/``Contents``/``Keywords``/``Selector`` annotation
  tree;
* ``Action`` with a mandatory ``Description`` and the ACYCLIC
  ``Contained`` decomposition;
* ``Module`` — design-level unit actions are allocated to
  (``AllocatedTo``), so configuration variants (figure 5's example is
  "system configurations that share most of the software modules") can
  be modelled;
* ``Access`` (→ ``Read`` / ``Write``) dataflow associations, ``Write``
  carrying ``NumberOfWrites``/``ErrorHandling``;
* ``Triggers`` — control flow between actions.

Covering conditions make ``Thing`` and ``Access`` formally incomplete
until refined, which is precisely how a SPADES specification "evolves to
a rather formal representation".
"""

from __future__ import annotations

from repro.core.schema import Schema, SchemaBuilder

__all__ = ["spades_schema", "CLASSES", "ASSOCIATIONS"]

#: top-level classes of the SPADES model (documentation/reflection aid)
CLASSES = (
    "Thing",
    "Data",
    "InputData",
    "OutputData",
    "Action",
    "Module",
)

#: associations of the SPADES model
ASSOCIATIONS = (
    "Access",
    "Read",
    "Write",
    "Contained",
    "Triggers",
    "AllocatedTo",
)


def spades_schema() -> Schema:
    """Build the SPADES specification schema (see module docstring)."""
    builder = SchemaBuilder("spades")
    builder.entity_class(
        "Thing", doc="most general category; vague statements start here"
    )
    builder.dependent("Thing", "Revised", "0..1", sort="DATE",
                      doc="date of last revision")
    builder.dependent("Thing", "Note", "0..*", sort="TEXT",
                      doc="free-form analyst notes")
    builder.dependent("Thing", "Deadline", "0..1", sort="DATE",
                      doc="completion deadline for the specification item")

    builder.entity_class("Data", specializes="Thing",
                         doc="passive data of the target system")
    builder.dependent("Data", "Text", "0..16", doc="structured annotation")
    builder.dependent("Data.Text", "Body", "1..1")
    builder.dependent("Data.Text.Body", "Contents", "1..1", sort="STRING")
    builder.dependent("Data.Text.Body", "Keywords", "0..*", sort="STRING")
    builder.dependent("Data.Text", "Selector", "0..1", sort="STRING")
    builder.entity_class("InputData", specializes="Data",
                         doc="data entering the system")
    builder.entity_class("OutputData", specializes="Data",
                         doc="data produced by the system")

    builder.entity_class("Action", specializes="Thing",
                         doc="active component of the target system")
    builder.dependent("Action", "Description", "1..1", sort="STRING",
                      doc="what the action does (mandatory before release)")

    builder.entity_class("Module", specializes="Thing",
                         doc="design-level unit actions are allocated to")
    builder.dependent("Module", "Language", "0..1", sort="STRING",
                      doc="implementation language")

    builder.association(
        "Access",
        ("data", "Data", "1..*"),
        ("by", "Action", "1..*"),
        doc="some dataflow between Data and Action; direction unknown",
    )
    builder.association(
        "Read",
        ("from", "Data", "1..*"),
        ("by", "Action", "0..*"),
        specializes="Access",
        doc="reading dataflow",
    )
    builder.association(
        "Write",
        ("to", "Data", "1..*"),
        ("by", "Action", "0..*"),
        specializes="Access",
        doc="writing dataflow",
    )
    builder.attribute("Write", "NumberOfWrites", "INTEGER", "0..1")
    builder.attribute("Write", "ErrorHandling", "STRING", "0..1",
                      doc="'abort' or 'repeat'")
    builder.association(
        "Contained",
        ("contained", "Action", "0..1"),
        ("container", "Action", "0..*"),
        acyclic=True,
        doc="hierarchical decomposition of actions",
    )
    builder.association(
        "Triggers",
        ("trigger", "Action", "0..*"),
        ("triggered", "Action", "0..*"),
        doc="control flow between actions",
    )
    builder.association(
        "AllocatedTo",
        ("action", "Action", "0..*"),
        ("module", "Module", "0..*"),
        doc="design allocation of actions to modules",
    )
    builder.covering("Thing")
    builder.covering("Access")
    return builder.build()
