"""A textual specification language for the SPADES miniature.

SPADES had textual and graphical surfaces; this module provides the
textual one: a line-oriented language that scripts, tests, and examples
use to build specifications, plus a printer that regenerates an
equivalent script from a workspace (parse → print → parse is stable).

Grammar (one statement per line, ``#`` starts a comment)::

    thing <Name> ["<note>"]
    action <Name> ["<description>"]
    data <Name> [input|output]
    module <Name> ["<language>"]
    flow <Action> ? <Data>            # vague access (direction unknown)
    read <Action> <- <Data>
    write <Action> -> <Data> [x<N>] [abort|repeat]
    contain <Container> ( <Child> [, <Child>]* )
    trigger <Action> => <Action>
    allocate <Action> @ <Module>
    note <Name> "<text>"
    deadline <Name> <yyyy-mm-dd>
"""

from __future__ import annotations

import re
import shlex
from typing import Optional

from repro.core.errors import SeedError
from repro.spades.tool import SpadesTool

__all__ = ["parse_spec", "print_spec"]

_WRITE_TIMES_RE = re.compile(r"^x(\d+)$")


class _SpecSyntaxError(SeedError):
    """A malformed specification line (with line number context)."""


def parse_spec(text: str, tool: Optional[SpadesTool] = None) -> SpadesTool:
    """Execute a specification script against a (new) workspace."""
    tool = tool or SpadesTool()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            _execute(line, tool)
        except SeedError as exc:
            raise _SpecSyntaxError(
                f"line {line_number}: {raw_line.strip()!r}: {exc}"
            ) from exc
    return tool


def _execute(line: str, tool: SpadesTool) -> None:
    tokens = shlex.split(line)
    keyword = tokens[0].lower()
    if keyword == "thing":
        _expect(len(tokens) in (2, 3), "thing <Name> [\"<note>\"]")
        tool.note_thing(tokens[1], tokens[2] if len(tokens) == 3 else None)
    elif keyword == "action":
        _expect(len(tokens) in (2, 3), "action <Name> [\"<description>\"]")
        tool.declare_action(tokens[1], tokens[2] if len(tokens) == 3 else None)
    elif keyword == "data":
        _expect(len(tokens) in (2, 3), "data <Name> [input|output]")
        direction = tokens[2].lower() if len(tokens) == 3 else None
        tool.declare_data(tokens[1], direction=direction)
    elif keyword == "module":
        _expect(len(tokens) in (2, 3), "module <Name> [\"<language>\"]")
        tool.declare_module(tokens[1], tokens[2] if len(tokens) == 3 else None)
    elif keyword == "flow":
        _expect(
            len(tokens) == 4 and tokens[2] == "?", "flow <Action> ? <Data>"
        )
        tool.note_dataflow(tokens[3], tokens[1])
    elif keyword == "read":
        _expect(
            len(tokens) == 4 and tokens[2] == "<-", "read <Action> <- <Data>"
        )
        tool.read_flow(tokens[3], tokens[1])
    elif keyword == "write":
        _parse_write(tokens, tool)
    elif keyword == "contain":
        _parse_contain(line, tool)
    elif keyword == "trigger":
        _expect(
            len(tokens) == 4 and tokens[2] == "=>", "trigger <Action> => <Action>"
        )
        tool.trigger(tokens[1], tokens[3])
    elif keyword == "allocate":
        _expect(
            len(tokens) == 4 and tokens[2] == "@", "allocate <Action> @ <Module>"
        )
        tool.allocate(tokens[1], tokens[3])
    elif keyword == "note":
        _expect(len(tokens) == 3, 'note <Name> "<text>"')
        tool.annotate(tokens[1], tokens[2])
    elif keyword == "deadline":
        _expect(len(tokens) == 3, "deadline <Name> <yyyy-mm-dd>")
        obj = tool.db.get_object(tokens[1])
        existing = obj.find_sub_object("Deadline")
        if existing is None:
            obj.add_sub_object("Deadline", tokens[2])
        else:
            existing.set_value(tokens[2])
    else:
        raise _SpecSyntaxError(f"unknown statement {keyword!r}")


def _parse_write(tokens: list[str], tool: SpadesTool) -> None:
    _expect(
        len(tokens) >= 4 and tokens[2] == "->",
        "write <Action> -> <Data> [x<N>] [abort|repeat]",
    )
    times: Optional[int] = None
    error_handling: Optional[str] = None
    for extra in tokens[4:]:
        match = _WRITE_TIMES_RE.match(extra)
        if match:
            times = int(match.group(1))
        elif extra.lower() in ("abort", "repeat"):
            error_handling = extra.lower()
        else:
            raise _SpecSyntaxError(f"unknown write modifier {extra!r}")
    tool.write_flow(tokens[3], tokens[1], times=times, error_handling=error_handling)


def _parse_contain(line: str, tool: SpadesTool) -> None:
    match = re.match(r"^contain\s+(\w+)\s*\(([^)]*)\)\s*$", line)
    if not match:
        raise _SpecSyntaxError("contain <Container> ( <Child> [, <Child>]* )")
    container = match.group(1)
    children = [child.strip() for child in match.group(2).split(",") if child.strip()]
    _expect(bool(children), "contain needs at least one child")
    tool.decompose(container, *children)


def _expect(condition: bool, usage: str) -> None:
    if not condition:
        raise _SpecSyntaxError(f"usage: {usage}")


def print_spec(tool: SpadesTool) -> str:
    """Regenerate a specification script from a workspace.

    The output round-trips: parsing it yields a workspace with the same
    objects, flows, structure, and annotations (oids differ; versions
    and patterns are persistence concerns, not spec text).
    """
    db = tool.db
    lines: list[str] = []

    def quoted(text: str) -> str:
        return '"' + text.replace('"', "'") + '"'

    for thing in db.objects("Thing", include_specials=False):
        lines.append(f"thing {thing.simple_name}")
    for data in db.objects("Data", include_specials=False):
        lines.append(f"data {data.simple_name}")
    for data in db.objects("InputData", include_specials=False):
        lines.append(f"data {data.simple_name} input")
    for data in db.objects("OutputData", include_specials=False):
        lines.append(f"data {data.simple_name} output")
    for action in db.objects("Action"):
        description = action.find_sub_object("Description")
        if description is not None and description.value:
            lines.append(
                f"action {action.simple_name} {quoted(description.value)}"
            )
        else:
            lines.append(f"action {action.simple_name}")
    for module in db.objects("Module"):
        language = module.find_sub_object("Language")
        if language is not None and language.value:
            lines.append(f"module {module.simple_name} {quoted(language.value)}")
        else:
            lines.append(f"module {module.simple_name}")
    for rel in db.relationships("Access"):
        data, action = rel.bound_at(0), rel.bound_at(1)
        if rel.association_name == "Access":
            lines.append(f"flow {action.simple_name} ? {data.simple_name}")
        elif rel.association_name == "Read":
            lines.append(f"read {action.simple_name} <- {data.simple_name}")
        else:
            parts = [f"write {action.simple_name} -> {data.simple_name}"]
            times = rel.attribute("NumberOfWrites")
            if times is not None:
                parts.append(f"x{times}")
            error_handling = rel.attribute("ErrorHandling")
            if error_handling is not None:
                parts.append(error_handling)
            lines.append(" ".join(parts))
    containment: dict[str, list[str]] = {}
    for rel in db.relationships("Contained"):
        container = rel.bound("container").simple_name
        containment.setdefault(container, []).append(
            rel.bound("contained").simple_name
        )
    for container, children in sorted(containment.items()):
        lines.append(f"contain {container} ({', '.join(sorted(children))})")
    for rel in db.relationships("Triggers"):
        lines.append(
            f"trigger {rel.bound('trigger').simple_name} => "
            f"{rel.bound('triggered').simple_name}"
        )
    for rel in db.relationships("AllocatedTo"):
        lines.append(
            f"allocate {rel.bound('action').simple_name} @ "
            f"{rel.bound('module').simple_name}"
        )
    for obj in db.objects("Thing", independent_only=True):
        for note in obj.sub_objects("Note"):
            if note.value:
                lines.append(f"note {obj.simple_name} {quoted(note.value)}")
        deadline = obj.find_sub_object("Deadline")
        if deadline is not None and deadline.value:
            lines.append(
                f"deadline {obj.simple_name} {deadline.value.isoformat()}"
            )
    return "\n".join(lines) + "\n"
