"""A miniature of the SPADES specification system, built on SEED.

SPADES is the specification and design tool the paper integrated its
SEED prototype into; the original is proprietary, so this package
rebuilds its data-management-relevant core on the public SEED API:

* :func:`~repro.spades.model.spades_schema` — the specification schema;
* :class:`~repro.spades.tool.SpadesTool` — the analyst-facing tool
  (vague entry, refinement, sessions, exploration, release);
* :mod:`~repro.spades.textio` — the textual specification language;
* :mod:`~repro.spades.reports` — report/figure renderers.
"""

from repro.spades.model import spades_schema
from repro.spades.reports import (
    render_database_figure,
    render_object_tree,
    render_version_history,
    render_workspace_summary,
)
from repro.spades.textio import parse_spec, print_spec
from repro.spades.tool import SpadesTool

__all__ = [
    "spades_schema",
    "SpadesTool",
    "parse_spec",
    "print_spec",
    "render_database_figure",
    "render_object_tree",
    "render_version_history",
    "render_workspace_summary",
]
