"""File-level version management à la Tichy's RCS (related work).

"Katz and Lehman and Tichy deal with version and configuration
management on the level of files. ... The version concept of SEED works
on the database, not on files." To make that contrast measurable, this
module implements the file-level approach: a specification is serialised
to *text* (the SPADES spec language or any other renderer), and whole
text files are checked in; storage uses RCS-style reverse deltas (full
text for the newest revision, line-edit scripts to reconstruct older
ones).

What the comparison shows (benchmark C2/F4 discussion): file-level
versioning must re-serialise and diff the entire document per check-in
(cost grows with document size), and it cannot answer item-level history
questions ("all versions of object AlarmHandler") without reconstructing
and scanning every revision — SEED answers them directly from the item's
version cell.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import VersionError

__all__ = ["FileVersionStore", "Revision"]

#: one edit of a reverse delta: replace lines [start:stop) by `lines`
Edit = tuple[int, int, tuple[str, ...]]


@dataclass(frozen=True)
class Revision:
    """Metadata of one checked-in revision."""

    number: int
    log: str


def _reverse_delta(new: list[str], old: list[str]) -> list[Edit]:
    """Edit script turning *new* back into *old* (line granularity)."""
    matcher = difflib.SequenceMatcher(a=new, b=old, autojunk=False)
    edits: list[Edit] = []
    for tag, new_start, new_stop, old_start, old_stop in matcher.get_opcodes():
        if tag != "equal":
            edits.append((new_start, new_stop, tuple(old[old_start:old_stop])))
    return edits


def _apply_delta(lines: list[str], edits: list[Edit]) -> list[str]:
    """Apply an edit script (edits are in ascending, non-overlapping order)."""
    result: list[str] = []
    cursor = 0
    for start, stop, replacement in edits:
        result.extend(lines[cursor:start])
        result.extend(replacement)
        cursor = stop
    result.extend(lines[cursor:])
    return result


class FileVersionStore:
    """RCS-style reverse-delta store for one text document."""

    def __init__(self) -> None:
        self._head: Optional[list[str]] = None
        self._head_number = 0
        #: revision number -> edit script reconstructing it from its successor
        self._reverse_deltas: dict[int, list[Edit]] = {}
        self._revisions: list[Revision] = []

    # -- check-in ------------------------------------------------------------

    def check_in(self, text: str, log: str = "") -> int:
        """Store a new revision of the document; returns its number.

        The whole document is diffed on every check-in — the cost that
        distinguishes file-level from database-level versioning.
        """
        lines = text.splitlines(keepends=True)
        if self._head is None:
            self._head = lines
            self._head_number = 1
        else:
            self._reverse_deltas[self._head_number] = _reverse_delta(
                lines, self._head
            )
            self._head = lines
            self._head_number += 1
        self._revisions.append(Revision(self._head_number, log))
        return self._head_number

    # -- check-out -------------------------------------------------------------------

    def check_out(self, number: Optional[int] = None) -> str:
        """Reconstruct a revision's full text (newest by default).

        Older revisions apply the chain of reverse deltas — the cost
        that makes file-level history retrieval expensive.
        """
        if self._head is None:
            raise VersionError("no revision has been checked in")
        if number is None:
            number = self._head_number
        if not 1 <= number <= self._head_number:
            raise VersionError(
                f"revision {number} does not exist (1..{self._head_number})"
            )
        lines = list(self._head)
        for revision in range(self._head_number - 1, number - 1, -1):
            lines = _apply_delta(lines, self._reverse_deltas[revision])
        return "".join(lines)

    # -- queries ---------------------------------------------------------------------------

    def revisions(self) -> list[Revision]:
        """All revisions, oldest first."""
        return list(self._revisions)

    @property
    def head_number(self) -> int:
        """The newest revision number (0 when empty)."""
        return self._head_number

    def stored_line_count(self) -> int:
        """Lines held in storage (head text + all delta lines).

        The file-level analogue of the delta store's state count.
        """
        count = len(self._head or [])
        for edits in self._reverse_deltas.values():
            for __, __, replacement in edits:
                count += len(replacement)
        return count

    def item_history(self, needle: str) -> list[int]:
        """Revisions whose text mentions *needle*.

        The best a file store can do for "find all versions of object
        X": reconstruct and scan every revision (O(revisions × size)).
        """
        return [
            number
            for number in range(1, self._head_number + 1)
            if needle in self.check_out(number)
        ]
