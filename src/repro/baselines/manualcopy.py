"""Sharing by manual copying: the no-pattern baseline (claim C3).

The paper's deadline example: "If a user wishes to express that some
procedures have a common deadline and wants to maintain that deadline
value consistently for these objects, he/she cannot do so" — without
patterns, the only option is to copy the value into every object and
update every copy on change. This module does exactly that against a
SEED database, so benchmark C3 can compare:

* one pattern update (propagates automatically, cannot diverge) versus
* N per-object updates (cost grows with N, and any missed object leaves
  the shared value silently inconsistent — :meth:`divergence` measures
  that failure mode).
"""

from __future__ import annotations

from typing import Any

from repro.core.database import SeedDatabase
from repro.core.objects import SeedObject

__all__ = ["ManualCopySharing"]


class ManualCopySharing:
    """Maintains a 'shared' sub-object value by copying it everywhere."""

    def __init__(self, db: SeedDatabase, role: str) -> None:
        self._db = db
        self._role = role
        self._members: list[SeedObject] = []

    # -- membership --------------------------------------------------------

    def add_member(self, obj: SeedObject, value: Any) -> SeedObject:
        """Give *obj* its own copy of the shared value."""
        existing = obj.find_sub_object(self._role)
        if existing is None:
            self._db.create_sub_object(obj, self._role, value)
        else:
            existing.set_value(value)
        self._members.append(obj)
        return obj

    @property
    def members(self) -> list[SeedObject]:
        """All objects holding a copy."""
        return list(self._members)

    # -- updates ---------------------------------------------------------------

    def update_all(self, value: Any) -> int:
        """Propagate a new value by updating every copy; returns the count.

        This is the O(N) update the pattern mechanism replaces with one
        write.
        """
        updated = 0
        for member in self._members:
            copy = member.find_sub_object(self._role)
            if copy is None:
                self._db.create_sub_object(member, self._role, value)
            else:
                copy.set_value(value)
            updated += 1
        return updated

    def update_some(self, value: Any, *, skip_every: int) -> int:
        """A buggy propagation that misses every *skip_every*-th member.

        Models the real failure mode of manual copying (a tool or user
        forgetting some objects); used by tests/benchmarks to show the
        divergence patterns rule out by construction.
        """
        updated = 0
        for position, member in enumerate(self._members):
            if skip_every and position % skip_every == 0:
                continue
            copy = member.find_sub_object(self._role)
            if copy is not None:
                copy.set_value(value)
                updated += 1
        return updated

    # -- verification -------------------------------------------------------------

    def values(self) -> list[Any]:
        """The current copies, in membership order."""
        result = []
        for member in self._members:
            copy = member.find_sub_object(self._role)
            result.append(copy.value if copy is not None else None)
        return result

    def divergence(self) -> int:
        """Number of distinct values across the copies (1 = consistent)."""
        return len({repr(value) for value in self.values()})

    def is_consistent(self) -> bool:
        """True when every member holds the same value."""
        return self.divergence() <= 1
