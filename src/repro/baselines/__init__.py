"""Baseline comparators for the benchmark harness.

Each baseline isolates one claim of the paper:

* :class:`~repro.baselines.strictstore.StrictStore` — the conventional
  strict-consistency approach that rejects vague/incomplete data (the
  motivating examples of the paper's section on vague information);
* :class:`~repro.baselines.fullcopy.FullCopyVersioning` — snapshot-by-
  copying, against SEED's delta version store;
* :class:`~repro.baselines.filestore.FileVersionStore` — file-level
  (RCS-style) versioning, the Katz/Lehman–Tichy related work;
* :class:`~repro.baselines.handcoded.HandCodedSpecStore` — the fixed-
  schema pre-SEED tool storage ("considerably slower, but much more
  flexible" needs both sides measured);
* :class:`~repro.baselines.manualcopy.ManualCopySharing` — value sharing
  by copying, against the pattern mechanism.
"""

from repro.baselines.filestore import FileVersionStore, Revision
from repro.baselines.fullcopy import FullCopyVersioning
from repro.baselines.handcoded import HandCodedSpecStore
from repro.baselines.manualcopy import ManualCopySharing
from repro.baselines.strictstore import StrictStore

__all__ = [
    "FileVersionStore",
    "Revision",
    "FullCopyVersioning",
    "HandCodedSpecStore",
    "ManualCopySharing",
    "StrictStore",
]
