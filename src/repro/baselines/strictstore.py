"""A conventional strict-consistency ER store (the paper's foil).

"The normal approach to database consistency is to require all data in
the database to fully comply with the structures and constraints given
in the schema. However, this approach prevents the entry of incomplete
and vague information into the database."

:class:`StrictStore` is that normal approach, over the same schema
machinery SEED uses: **every** schema rule — minimum *and* maximum
cardinalities, covering conditions, membership — is enforced on every
update, and there are no generalized escape categories because vague
categories only help if the store lets items live in them (a strict
store treats an item parked in a covering general class as a violation).

It exists so benchmarks and tests can demonstrate the paper's two
motivating rejections on real code:

1. a dataflow of unknown direction cannot be stored (no ``Access``-like
   category is admissible);
2. a ``Data`` object cannot be stored before its mandatory ``Read`` and
   ``Write`` relationships exist — and those relationships need the
   object, so nothing can ever be entered step by step.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.database import SeedDatabase
from repro.core.errors import ConsistencyError
from repro.core.objects import SeedObject
from repro.core.relationships import SeedRelationship
from repro.core.schema.schema import Schema

__all__ = ["StrictStore"]


class StrictStore:
    """A strict-consistency wrapper: completeness rules become consistency.

    The store reuses :class:`SeedDatabase` for structure but upgrades
    every completeness condition to a hard constraint checked after
    every operation; any gap rolls the operation back. The public
    surface mirrors the SEED operational interface so benchmarks can run
    identical scripts against both.
    """

    def __init__(self, schema: Schema, name: str = "strict") -> None:
        self._db = SeedDatabase(schema, name)

    # -- operations (each strict-checked) ---------------------------------

    def create_object(self, class_name: str, name: str) -> SeedObject:
        """Create an object; rejected unless immediately complete."""
        with self._strict_operation():
            return self._db.create_object(class_name, name)

    def create_sub_object(
        self, parent: SeedObject, role: str, value: Any = None
    ) -> SeedObject:
        """Create a sub-object; rejected unless parent stays complete."""
        with self._strict_operation():
            return self._db.create_sub_object(parent, role, value)

    def relate(
        self, association: str, bindings: dict[str, SeedObject], **kwargs: SeedObject
    ) -> SeedRelationship:
        """Create a relationship; rejected unless endpoints stay complete."""
        with self._strict_operation():
            return self._db.relate(association, bindings, **kwargs)

    def set_value(self, obj: SeedObject, value: Any) -> None:
        """Set a value; clearing a mandatory value is rejected."""
        with self._strict_operation():
            self._db.set_value(obj, value)

    def delete(self, item: SeedObject | SeedRelationship) -> None:
        """Delete an item; rejected when survivors become incomplete."""
        with self._strict_operation():
            self._db.delete(item)

    def compound(self):
        """Group several operations into one strict check (a transaction).

        Even with compound operations the strict store cannot accept
        *vague* information — there is no admissible category for it —
        but it can at least enter mutually dependent items together.
        """
        return self._strict_operation()

    # -- retrieval (read-only passthrough) ------------------------------------

    def find_object(self, name: str) -> Optional[SeedObject]:
        """Exact-name lookup."""
        return self._db.find_object(name)

    def objects(self, class_name: Optional[str] = None) -> list[SeedObject]:
        """Class extent."""
        return self._db.objects(class_name)

    def relationships(self, association: Optional[str] = None) -> list[SeedRelationship]:
        """Association extent."""
        return self._db.relationships(association)

    def statistics(self) -> dict[str, int]:
        """Underlying store statistics."""
        return self._db.statistics()

    # -- internals ----------------------------------------------------------------

    def _strict_operation(self):
        from contextlib import contextmanager, nullcontext

        if self._db.in_transaction:
            # already inside a compound(): the outer context checks at
            # its end; individual operations pass through unchecked
            return nullcontext()

        @contextmanager
        def run():
            with self._db.transaction() as txn:
                yield txn
                # consistency was deferred to commit by the transaction;
                # completeness we enforce here, inside, so a failure
                # aborts the transaction via the raised error
                report = self._db.check_completeness()
                if not report.is_complete:
                    raise ConsistencyError(
                        "strict store rejects incomplete state:\n  "
                        + "\n  ".join(str(gap) for gap in report.gaps),
                        [],
                    )

        return run()
