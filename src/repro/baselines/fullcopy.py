"""Full-copy snapshot versioning: the baseline SEED's delta scheme beats.

"When creating a version we do not save the complete database" — this
module is the version manager that *does*: every snapshot stores the
frozen state of **every** live item, regardless of what changed. Views
are trivial (one lookup); storage grows with ``versions × database
size`` instead of SEED's ``versions × change size``. Benchmark C2
measures exactly that trade-off.

The copier wraps a live :class:`SeedDatabase`; it deliberately ignores
the database's own delta version manager so the two schemes can be
driven side by side from one update script.
"""

from __future__ import annotations

from typing import Optional

from repro.core.database import SeedDatabase
from repro.core.errors import VersionError
from repro.core.versions.store import ItemKey, ItemState
from repro.core.versions.version_id import VersionId

__all__ = ["FullCopyVersioning"]


class FullCopyVersioning:
    """Snapshot-by-copying version management for one database."""

    def __init__(self, db: SeedDatabase) -> None:
        self._db = db
        self._snapshots: dict[VersionId, dict[ItemKey, ItemState]] = {}
        self._order: list[VersionId] = []

    # -- snapshots ---------------------------------------------------------

    def create_version(self, version: Optional[str | VersionId] = None) -> VersionId:
        """Store a complete copy of the live state."""
        if version is None:
            vid = (
                self._order[-1].next_major()
                if self._order
                else VersionId.initial()
            )
        else:
            vid = VersionId.parse(version)
        if vid in self._snapshots:
            raise VersionError(f"version {vid} already exists")
        snapshot: dict[ItemKey, ItemState] = {}
        for obj in self._db.all_objects_raw():
            if not obj.deleted:
                snapshot[("o", obj.oid)] = obj.freeze()
        for rel in self._db.all_relationships_raw():
            if not rel.deleted:
                snapshot[("r", rel.rid)] = rel.freeze()
        self._snapshots[vid] = snapshot
        self._order.append(vid)
        return vid

    # -- access -------------------------------------------------------------------

    def snapshot(self, version: str | VersionId) -> dict[ItemKey, ItemState]:
        """The complete item-state map of one version."""
        vid = VersionId.parse(version)
        try:
            return dict(self._snapshots[vid])
        except KeyError:
            raise VersionError(f"version {vid} does not exist") from None

    def state_of(self, version: str | VersionId, key: ItemKey) -> Optional[ItemState]:
        """One item's state in one version (None when not present)."""
        return self.snapshot(version).get(key)

    def versions(self) -> list[VersionId]:
        """All snapshots in creation order."""
        return list(self._order)

    # -- cost metrics ----------------------------------------------------------------

    def stored_state_count(self) -> int:
        """Total stored item states — compare with the delta store's."""
        return sum(len(snapshot) for snapshot in self._snapshots.values())

    def snapshot_size(self, version: str | VersionId) -> int:
        """Item states stored for one version (= database size then)."""
        return len(self.snapshot(version))
