"""A hand-coded, schema-specific specification store ("SPADES before SEED").

"The first experiences with SPADES using SEED show that SPADES has
become considerably slower, but much more flexible" — to measure both
halves of that sentence, this module is the pre-SEED data layer: plain
Python dicts and dataclasses hard-wired to one fixed specification
model. No generic object graph, no consistency engine, no versions, no
patterns — just the fastest straightforward implementation of the same
operations the SPADES tool performs.

The *slower* half (benchmark C1) compares identical workloads against
:class:`~repro.spades.tool.SpadesTool`. The *more flexible* half is
structural and equally measurable: extending the model by a new item
kind or a new flow kind requires **new code here** (see
``SUPPORTED_KINDS`` — anything else raises), whereas the SEED-backed
tool takes a schema object, so the same change is a data change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["HandCodedSpecStore", "SpecAction", "SpecData", "SpecFlow"]

#: item kinds this implementation was written for; adding one means
#: writing and shipping new tool code (the inflexibility under test)
SUPPORTED_KINDS = ("action", "data")

#: flow kinds hard-wired into the update and report paths
SUPPORTED_FLOWS = ("read", "write")


@dataclass
class SpecAction:
    """An action record (fixed fields, no generic structure)."""

    name: str
    description: Optional[str] = None
    container: Optional[str] = None
    notes: list[str] = field(default_factory=list)


@dataclass
class SpecData:
    """A data record; direction is a plain string, not a classification."""

    name: str
    direction: Optional[str] = None  # None | "input" | "output"
    notes: list[str] = field(default_factory=list)


@dataclass
class SpecFlow:
    """A dataflow record; vague flows are inexpressible by construction."""

    kind: str  # "read" | "write"
    data: str
    action: str
    times: Optional[int] = None


class HandCodedSpecStore:
    """The fixed-schema, no-DBMS specification store."""

    def __init__(self) -> None:
        self._actions: dict[str, SpecAction] = {}
        self._data: dict[str, SpecData] = {}
        self._flows: list[SpecFlow] = []

    # -- updates -----------------------------------------------------------

    def declare_action(self, name: str, description: Optional[str] = None) -> SpecAction:
        """Create an action record."""
        if name in self._actions or name in self._data:
            raise ValueError(f"name {name!r} already used")
        action = SpecAction(name, description)
        self._actions[name] = action
        return action

    def declare_data(
        self, name: str, direction: Optional[str] = None
    ) -> SpecData:
        """Create a data record."""
        if name in self._actions or name in self._data:
            raise ValueError(f"name {name!r} already used")
        data = SpecData(name, direction)
        self._data[name] = data
        return data

    def declare(self, kind: str, name: str) -> object:
        """Generic-looking entry point that is not generic at all.

        This is where the hand-coded approach shows its cost: every new
        kind is another elif, written, reviewed, and shipped.
        """
        if kind == "action":
            return self.declare_action(name)
        if kind == "data":
            return self.declare_data(name)
        raise NotImplementedError(
            f"item kind {kind!r} requires a tool change "
            f"(supported: {', '.join(SUPPORTED_KINDS)})"
        )

    def add_flow(
        self, kind: str, data_name: str, action_name: str, times: Optional[int] = None
    ) -> SpecFlow:
        """Add a read/write flow; vague flows have no representation."""
        if kind not in SUPPORTED_FLOWS:
            raise NotImplementedError(
                f"flow kind {kind!r} requires a tool change "
                f"(supported: {', '.join(SUPPORTED_FLOWS)})"
            )
        if data_name not in self._data:
            raise ValueError(f"unknown data {data_name!r}")
        if action_name not in self._actions:
            raise ValueError(f"unknown action {action_name!r}")
        flow = SpecFlow(kind, data_name, action_name, times)
        self._flows.append(flow)
        return flow

    def contain(self, container: str, contained: str) -> None:
        """Set an action's container (single-parent, cycle-checked)."""
        if container not in self._actions or contained not in self._actions:
            raise ValueError("both actions must exist")
        node: Optional[str] = container
        while node is not None:
            if node == contained:
                raise ValueError("containment cycle")
            node = self._actions[node].container
        self._actions[contained].container = container

    def annotate(self, name: str, note: str) -> None:
        """Attach a note to an action or data record."""
        record = self._actions.get(name) or self._data.get(name)
        if record is None:
            raise ValueError(f"unknown item {name!r}")
        record.notes.append(note)

    # -- retrieval ------------------------------------------------------------------

    def find(self, name: str) -> Optional[object]:
        """Look an item up by name."""
        return self._actions.get(name) or self._data.get(name)

    def actions(self) -> list[SpecAction]:
        """All actions."""
        return list(self._actions.values())

    def data(self) -> list[SpecData]:
        """All data records."""
        return list(self._data.values())

    def flows_of(self, name: str) -> list[SpecFlow]:
        """Flows touching the named item."""
        return [
            flow
            for flow in self._flows
            if flow.data == name or flow.action == name
        ]

    def readers_of(self, data_name: str) -> list[str]:
        """Actions reading *data_name*."""
        return [
            flow.action
            for flow in self._flows
            if flow.kind == "read" and flow.data == data_name
        ]

    def dataflow_report(self) -> list[str]:
        """Same shape as the SPADES tool's report, for output parity."""
        lines = []
        for flow in self._flows:
            marker = "R" if flow.kind == "read" else "W"
            verb = "reads" if flow.kind == "read" else "writes"
            suffix = f" x{flow.times}" if flow.times is not None else ""
            lines.append(f"{marker} {flow.action} {verb} {flow.data}{suffix}")
        return sorted(lines)

    def statistics(self) -> dict[str, int]:
        """Counters matching the SEED database's statistics keys loosely."""
        return {
            "objects": len(self._actions) + len(self._data),
            "relationships": len(self._flows),
        }
