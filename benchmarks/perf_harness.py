"""Repeatable performance harness: create / relate / query / commit.

Times the hot paths the PR-1 index layer targets, at several database
sizes, against the seed's brute-force implementations (which are kept
in the tree as reference code: :func:`repro.core.indexes.brute_objects`,
``count_participations_scan``, ``validate_acyclic(use_index=False)``),
plus the PR-2 multi-join query scenario (cost-based planner versus the
eager left-to-right ``Relation`` algebra), the PR-3 scenarios:
``state_on_chain`` walks over a long version chain before and after
snapshot consolidation (``version_walk``), and incremental
``check_completeness`` versus the retained full scan
(``completeness_incremental``) — and the PR-4 bulk-write scenarios:
``bulk_ingest`` (populating a primed database through ``bulk()``
versus the per-item mutation path) and ``checkout_cold`` (one-pass
``resolve_chain`` view materialization versus the per-cell
``state_on_chain`` walk) — and the PR-5 scenario ``multijoin_drift``:
a multi-join plan cached against a small population, then the database
bulk-loaded two orders of magnitude larger; the drift-aware plan cache
(re-optimizing on cardinality drift) is timed against executing the
pinned stale plan — and the PR-6 scenario ``durability``: making one
check-in durable via a write-ahead delta record (O(change)) versus the
only pre-PR-6 durability mechanism, a full-image checkpoint
(O(database)) — and the PR-7 scenario ``multiuser_concurrent``: eight
reader threads retrieving while a writer applies bulk check-ins, MVCC
pinned-snapshot reads (which never block on an apply) against the
pre-PR-7 serialized live reads — and the PR-8 scenario
``multijoin_parallel``: a selective multi-join whose driving extent
scan the optimizer shards across a worker pool with fused per-shard
scan kernels (:mod:`repro.core.query.parallel`), timed against the
serial streaming executor on the identical query; below the costing
threshold the parallel config deliberately stays serial, so the small
sizes double as a no-overhead regression check. Sizes at or above
``PARALLEL_ONLY_SIZE`` (the 1M tier) run **only** this section — the
brute-force baselines of the earlier sections are infeasible there —
and the PR-9 scenario ``durability_txn``: making one *direct*
transaction durable via the post-commit write-ahead txn delta
(O(change)) versus the only pre-PR-9 mechanism for direct mutations,
a checkpoint per transaction (O(database)) — and the PR-10 scenario
``durability_group_commit``: a hot loop of committed direct
transactions under :class:`~repro.core.storage.engine.
GroupCommitPolicy` batching (one fsync per drained batch) against the
strict per-commit-fsync default, plus the peak traced memory of a
streamed ``checkpoint(streamed=True)`` (schema header and per-item
records framed straight off the item tables) against the monolithic
full-image dict.
Results are written to ``BENCH_PR10.json`` at the repository root so
future PRs have a perf trajectory to compare against
(``BENCH_PR1.json``..``BENCH_PR9.json`` hold the earlier runs;
``benchmarks/compare_bench.py`` gates CI on the trajectory, since PR 5
fails when a gated baseline section vanishes from the fresh run, and
since PR 8 also fails in reverse when an undeclared section name
appears — ``--allow-new`` waives it for the introducing PR).

Run::

    PYTHONPATH=src python benchmarks/perf_harness.py            # full: 1k/10k/50k
    PYTHONPATH=src python benchmarks/perf_harness.py --quick    # CI smoke: 1k
    PYTHONPATH=src python benchmarks/perf_harness.py \
        --sizes 10000 1000000                                   # nightly 1M tier

This is a standalone script, deliberately not a pytest module: the
timings are workload benchmarks, not assertions (the figure/claim
regenerations under ``benchmarks/test_*.py`` stay pytest-based); CI
passes ``--gate-planner`` to fail the smoke run if the planner ever
evaluates the multi-join scenario slower than the eager algebra, and
runs ``compare_bench.py`` afterwards to fail on >25% regressions of
any gated section against the committed baselines.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.database import SeedDatabase  # noqa: E402
from repro.core.indexes import brute_objects  # noqa: E402
from repro.core.versions.compaction import RetentionPolicy  # noqa: E402
from repro.core.query.algebra import Relation, extent, relationship_relation  # noqa: E402
from repro.core.query.parallel import ParallelConfig  # noqa: E402
from repro.core.query.planner import execute_node, on, plan, plan_cache  # noqa: E402
from repro.core.query.predicates import name_prefix, value_is  # noqa: E402
from repro.core.query.retrieval import Retrieval  # noqa: E402
from repro.core.schema.builder import SchemaBuilder  # noqa: E402

FULL_SIZES = (1_000, 10_000, 50_000)
QUICK_SIZES = (1_000,)
#: sizes at or above this run only the multijoin_parallel section
PARALLEL_ONLY_SIZE = 200_000


def harness_schema():
    """A small mixed schema: class family + an ACYCLIC association."""
    builder = SchemaBuilder("perf")
    builder.entity_class("Artifact")
    builder.entity_class("Doc", specializes="Artifact")
    builder.entity_class("Code", specializes="Artifact")
    builder.entity_class("Note", specializes="Artifact")
    builder.entity_class("Step")
    builder.association(
        "Contained",
        ("contained", "Step", "0..*"),
        ("container", "Step", "0..*"),
        acyclic=True,
    )
    builder.association(
        "Mentions",
        ("doc", "Doc", "0..*"),
        ("code", "Code", "0..*"),
    )
    builder.association(
        "Covers",
        ("note", "Note", "0..*"),
        ("doc", "Doc", "0..*"),
    )
    return builder.build()


def median_time(fn, repeats: int, min_sample_s: float = 0.002) -> float:
    """Median wall-clock seconds per call of *fn*.

    Sub-millisecond operations are looped inside each sample until a
    sample spans at least *min_sample_s*, then divided back — otherwise
    timer granularity and scheduler noise dominate the nanosecond-scale
    indexed paths and the speedup ratios the CI trend gate
    (``compare_bench.py``) compares jitter across runs.
    """
    started = time.perf_counter()
    fn()  # warm-up; also calibrates the inner loop
    single = time.perf_counter() - started
    inner = 1
    if 0 < single < min_sample_s:
        inner = min(10_000, max(1, round(min_sample_s / single)))
    samples = []
    for __ in range(repeats):
        started = time.perf_counter()
        for __ in range(inner):
            fn()
        samples.append((time.perf_counter() - started) / inner)
    return statistics.median(samples)


def bench_size(size: int, repeats: int) -> dict:
    """All measurements for one database size."""
    db = SeedDatabase(harness_schema(), f"perf-{size}")
    retrieval = Retrieval(db)
    result: dict = {"objects": size, "acyclic_edges": size}

    # -- create: `size` objects, every 10th a Doc -----------------------
    classes = ["Doc"] + ["Code"] * 5 + ["Note"] * 4
    started = time.perf_counter()
    for i in range(size):
        db.create_object(classes[i % 10], f"Obj{i}")
    elapsed = time.perf_counter() - started
    result["create_objects_s"] = elapsed
    result["create_objects_per_s"] = round(size / elapsed)

    # -- relate: a Contained forest of `size` edges ---------------------
    # containers form chains of 10; each leaf hangs off one container,
    # so incremental reachability walks at most ~10 nodes
    container_count = max(size // 10, 1)
    containers = [
        db.create_object("Step", f"Container{i}") for i in range(container_count)
    ]
    for i in range(1, container_count):
        if i % 10:
            db.relate(
                "Contained",
                contained=containers[i],
                container=containers[i - 1],
            )
    chain_edges = sum(1 for i in range(1, container_count) if i % 10)
    leaves = [db.create_object("Step", f"Leaf{i}") for i in range(size - chain_edges)]
    started = time.perf_counter()
    for i, leaf in enumerate(leaves):
        db.relate(
            "Contained",
            contained=leaf,
            container=containers[i % container_count],
        )
    elapsed = time.perf_counter() - started
    result["create_relationships_s"] = elapsed
    result["create_relationships_per_s"] = round(len(leaves) / elapsed)

    # -- query: class extent, indexed vs. seed full scan ----------------
    indexed = median_time(lambda: db.objects("Doc"), repeats)
    brute = median_time(lambda: brute_objects(db, "Doc"), repeats)
    assert [o.oid for o in db.objects("Doc")] == [
        o.oid for o in brute_objects(db, "Doc")
    ]
    result["query_extent"] = {
        "extent_size": len(db.objects("Doc")),
        "indexed_s": indexed,
        "bruteforce_s": brute,
        "speedup": round(brute / indexed, 1) if indexed else None,
    }

    # -- query: name prefix, bisect vs. seed full scan ------------------
    prefix = "Obj1"
    indexed = median_time(lambda: retrieval.by_name_prefix(prefix), repeats)
    brute = median_time(
        lambda: [
            obj
            for obj in brute_objects(db, independent_only=True)
            if obj.simple_name.startswith(prefix)
        ],
        repeats,
    )
    result["query_name_prefix"] = {
        "matches": len(retrieval.by_name_prefix(prefix)),
        "indexed_s": indexed,
        "bruteforce_s": brute,
        "speedup": round(brute / indexed, 1) if indexed else None,
    }

    # -- query: participation count, counter vs. enumeration ------------
    association = db.schema.association("Contained")
    busy = containers[0]
    indexed = median_time(
        lambda: db.patterns.count_participations(busy, association, 1), repeats
    )
    brute = median_time(
        lambda: db.patterns.count_participations_scan(busy, association, 1),
        repeats,
    )
    assert db.patterns.count_participations(
        busy, association, 1
    ) == db.patterns.count_participations_scan(busy, association, 1)
    result["count_participations"] = {
        "count": db.patterns.count_participations(busy, association, 1),
        "indexed_s": indexed,
        "bruteforce_s": brute,
        "speedup": round(brute / indexed, 1) if indexed else None,
    }

    # -- commit: one relationship into the ACYCLIC association ----------
    # the seed re-derived the whole family graph and DFS-walked it on
    # every such commit; that full check is timed as the baseline
    commit_samples = []
    for i in range(repeats):
        extra = db.create_object("Step", f"Extra{i}")
        started = time.perf_counter()
        db.relate(
            "Contained",
            contained=extra,
            container=containers[i % container_count],
        )
        commit_samples.append(time.perf_counter() - started)
    commit = statistics.median(commit_samples)
    full_check = median_time(
        lambda: db.consistency.validate_acyclic(association, use_index=False),
        repeats,
    )
    indexed_full_check = median_time(
        lambda: db.consistency.validate_acyclic(association), repeats
    )
    result["commit_acyclic"] = {
        "graph_edges": size + repeats,
        "indexed_commit_s": commit,
        "seed_full_check_s": full_check,
        "indexed_full_check_s": indexed_full_check,
        "speedup": round(full_check / commit, 1) if commit else None,
    }

    # -- commit: version snapshot over the dirty set --------------------
    started = time.perf_counter()
    db.create_version()
    result["create_version_s"] = time.perf_counter() - started

    # -- query: multi-join, cost-based planner vs eager algebra ---------
    # "which code is mentioned by docs covered by notes named Obj10*":
    # the eager algebra evaluates the query as written — full Note
    # extent, two fully materialized joins, selection last; the planner
    # pushes the selection into a bisected prefix scan, reorders the
    # joins smallest-first, and streams the probe sides. This section
    # runs LAST: its extra relationships must not inflate the brute
    # baselines of the PR-1 measurements above (the perf trajectory
    # against BENCH_PR1.json has to stay apples to apples).
    docs = db.objects("Doc")
    codes = db.objects("Code")
    notes = db.objects("Note")
    for position, doc in enumerate(docs):
        for offset in range(6):
            db.relate(
                "Mentions",
                doc=doc,
                code=codes[(position * 6 + offset) % len(codes)],
            )
    for position, note in enumerate(notes):
        db.relate("Covers", note=note, doc=docs[position % len(docs)])
    note_prefix = "Obj10"
    predicate = on("note", name_prefix(note_prefix))

    def eager_multijoin() -> Relation:
        return (
            extent(db, "Note", column="note")
            .join(relationship_relation(db, "Covers"))
            .join(relationship_relation(db, "Mentions"))
            .select(predicate)
            .project("code")
        )

    def planned_multijoin() -> Relation:
        return (
            plan(db)
            .extent("Note", column="note")
            .join(plan(db).relationship("Covers"))
            .join(plan(db).relationship("Mentions"))
            .select(predicate)
            .project("code")
            .execute()
        )

    assert sorted(o.oid for o in eager_multijoin().column("code")) == sorted(
        o.oid for o in planned_multijoin().column("code")
    )
    planner_time = median_time(planned_multijoin, repeats)
    eager_time = median_time(eager_multijoin, repeats)
    result["query_multijoin"] = {
        "joined_relationships": len(docs) * 6 + len(notes),
        "result_rows": len(planned_multijoin()),
        "planner_s": planner_time,
        "eager_s": eager_time,
        "speedup": round(eager_time / planner_time, 1) if planner_time else None,
    }

    return result


def completeness_schema():
    """A schema with completeness conditions the gap engine must track."""
    builder = SchemaBuilder("complete")
    builder.entity_class("Task")
    builder.dependent("Task", "Title", "1..1", sort="STRING")
    builder.dependent("Task", "Note", "0..*", sort="STRING")
    return builder.build()


def ingest_schema():
    """A sub-object-rich schema plus a dependency chain (bulk ingest)."""
    builder = SchemaBuilder("ingest")
    builder.entity_class("Task")
    builder.dependent("Task", "Title", "1..1", sort="STRING")
    builder.dependent("Task", "Note", "0..*", sort="STRING")
    builder.association(
        "DependsOn",
        ("prereq", "Task", "0..*"),
        ("dependent", "Task", "0..*"),
        acyclic=True,
    )
    return builder.build()


def bench_bulk_ingest(size: int, repeats: int) -> dict:
    """``bulk_load`` vs. the per-item mutation path, identical data.

    ``size`` tasks, each with a title and four notes, linked into
    ACYCLIC dependency chains of ~500 with two edges per task (deep
    containment/dependency structures — exactly where the per-edge
    incremental reachability probe degrades: every probe walks the
    chain behind the new edge's target, while the batch pays one DFS
    over the whole family regardless of depth). The database is primed
    (one completeness check) before population, as after any real
    session start — so the per-item path pays its per-commit costs in
    full: an undo closure and index update per mutation, endpoint
    re-validation per relate, one reachability probe per edge, and one
    completeness fan-out per commit. The bulk path pays one index
    rebuild, one validation pass, one cycle DFS, and one dirty merge.
    Both paths are verified to land in the identical state. Specs are
    prepared outside the timed regions.
    """
    notes_per_task = 4
    # chain depth drives the per-edge probe cost the batch DFS avoids;
    # capped downward at large sizes to bound total harness runtime
    chain = min(1_000, max(250, 10_000_000 // size))
    object_specs = [
        {
            "class": "Task",
            "name": f"Task{i}",
            "sub_objects": [{"role": "Title", "value": f"title {i}"}]
            + [
                {"role": "Note", "value": f"note {i}.{note_index}"}
                for note_index in range(notes_per_task)
            ],
        }
        for i in range(size)
    ]
    relationship_specs = []
    for i in range(size):
        if i % chain and i >= 1:
            relationship_specs.append(
                {
                    "association": "DependsOn",
                    "bindings": {
                        "prereq": f"Task{i}",
                        "dependent": f"Task{i - 1}",
                    },
                }
            )
        if i % chain > 1 and i >= 2:
            relationship_specs.append(
                {
                    "association": "DependsOn",
                    "bindings": {
                        "prereq": f"Task{i}",
                        "dependent": f"Task{i - 2}",
                    },
                }
            )

    def fresh_db(name: str) -> SeedDatabase:
        db = SeedDatabase(ingest_schema(), name)
        db.create_object("Task", "Seeded").add_sub_object("Title", "seed")
        db.check_completeness()  # prime the incremental gap map
        return db

    def populate_per_item(db: SeedDatabase) -> None:
        for spec in object_specs:
            task = db.create_object(spec["class"], spec["name"])
            for sub_spec in spec["sub_objects"]:
                task.add_sub_object(sub_spec["role"], sub_spec["value"])
        for spec in relationship_specs:
            db.relate(
                spec["association"],
                {
                    role: db.get_object(target)
                    for role, target in spec["bindings"].items()
                },
            )

    # each sample needs a fresh database, so the usual median_time
    # helper does not fit; the minimum over `samples` fresh builds is
    # the noise-robust estimate (timeit practice: the fastest run is
    # the one least disturbed by the scheduler/GC), applied to both
    # paths identically. One build only at 50k — runtime.
    samples = 1 if size >= 50_000 else min(3, repeats)
    per_item_times = []
    for sample in range(samples):
        per_item_db = fresh_db(f"ingest-item-{size}-{sample}")
        gc.collect()  # earlier sections' garbage must not bill this one
        started = time.perf_counter()
        populate_per_item(per_item_db)
        per_item_times.append(time.perf_counter() - started)
    per_item = min(per_item_times)

    bulk_times = []
    for sample in range(samples):
        bulk_db = fresh_db(f"ingest-bulk-{size}-{sample}")
        gc.collect()
        started = time.perf_counter()
        bulk_db.bulk_load(object_specs, relationship_specs)
        bulk_times.append(time.perf_counter() - started)
    bulk = min(bulk_times)

    item_stats = per_item_db.statistics()
    bulk_stats = bulk_db.statistics()
    assert item_stats["objects"] == bulk_stats["objects"]
    assert item_stats["relationships"] == bulk_stats["relationships"]
    bulk_db.indexes.verify()
    item_gaps = sorted(
        (g.kind, g.item, g.element) for g in per_item_db.check_completeness()
    )
    bulk_gaps = sorted(
        (g.kind, g.item, g.element) for g in bulk_db.check_completeness()
    )
    assert item_gaps == bulk_gaps
    return {
        "objects": bulk_stats["objects"],
        "sub_objects_per_task": notes_per_task + 1,
        "relationships": bulk_stats["relationships"],
        "chain_length": chain,
        "bruteforce_s": per_item,
        "indexed_s": bulk,
        "speedup": round(per_item / bulk, 1) if bulk else None,
    }


def bench_multijoin_drift(size: int, repeats: int) -> dict:
    """Drift-aware plan cache vs. the pinned stale plan after a bulk load.

    The stale-plan hole PR 5 closes, measured: a three-way join (query
    written worst-first: ``Mentions ⋈ Covers ⋈ σ[name^Hot](Note)``) is
    optimized and cached against a small population where the
    relationship scans are tiny — the greedy reorderer therefore keeps
    the written order. ``bulk_load`` then inflates the database to
    ``size`` (every doc mentioned 6×, every note covering one doc)
    while the ``Hot`` notes stay few. The pinned plan still materializes
    the full ``Mentions ⋈ Covers`` intermediate before the selective
    extent touches it — O(database) — whereas the drift-aware cache
    notices the leaf-cardinality drift at lookup, re-optimizes, and
    starts from the selective prefix scan with index nested-loop joins
    — O(matches). Both paths are verified row-identical.
    """
    db = SeedDatabase(harness_schema(), f"drift-{size}")
    hot = max(size // 100, 5)
    small_docs = [db.create_object("Doc", f"SeedDoc{i}") for i in range(5)]
    small_codes = [db.create_object("Code", f"SeedCode{i}") for i in range(5)]
    for i in range(hot):
        note = db.create_object("Note", f"Hot{i}")
        db.relate("Covers", note=note, doc=small_docs[i % 5])
    for i in range(5):
        db.relate("Mentions", doc=small_docs[i], code=small_codes[i])

    query = (
        plan(db)
        .relationship("Mentions")
        .join(plan(db).relationship("Covers"))
        .join(plan(db).extent("Note", column="note"))
        .select(on("note", name_prefix("Hot")))
        .project("code")
    )
    cache = plan_cache(db)
    stale_plan = query.optimized()  # cached against the small statistics

    doc_count = max(size // 10, 10)
    code_count = max(size // 10, 10)
    note_count = size
    db.bulk_load(
        objects=[{"class": "Doc", "name": f"Doc{i}"} for i in range(doc_count)]
        + [{"class": "Code", "name": f"Code{i}"} for i in range(code_count)]
        + [{"class": "Note", "name": f"Cold{i}"} for i in range(note_count)],
        relationships=[
            {
                "association": "Mentions",
                "bindings": {
                    "doc": f"Doc{i}",
                    "code": f"Code{(i * 6 + offset) % code_count}",
                },
            }
            for i in range(doc_count)
            for offset in range(6)
        ]
        + [
            {
                "association": "Covers",
                "bindings": {"note": f"Cold{i}", "doc": f"Doc{i % doc_count}"},
            }
            for i in range(note_count)
        ],
    )

    reoptimizations_before = cache.reoptimizations
    fresh_result = query.execute()  # drift detected: re-optimized plan
    assert cache.reoptimizations == reoptimizations_before + 1, (
        "the bulk load must trip the drift threshold"
    )
    stale_result = execute_node(db, stale_plan)
    assert sorted(o.oid for o in stale_result.column("code")) == sorted(
        o.oid for o in fresh_result.column("code")
    )
    stale_time = median_time(lambda: execute_node(db, stale_plan), repeats)
    drift_aware = median_time(query.execute, repeats)
    return {
        "small_phase_notes": hot,
        "bulk_loaded_objects": doc_count + code_count + note_count,
        "joined_relationships": doc_count * 6 + note_count,
        "result_rows": len(fresh_result),
        "reoptimizations": cache.reoptimizations,
        "bruteforce_s": stale_time,
        "indexed_s": drift_aware,
        "speedup": round(stale_time / drift_aware, 1) if drift_aware else None,
    }


def bench_checkout_cold(size: int, repeats: int) -> dict:
    """Cold view materialization: one-pass resolve vs. per-cell walks.

    ``size`` objects saved at the chain root, then a churn chain of up
    to ``size/20`` versions with **no** snapshots: every one of the
    ``size`` cells recorded only at the first version, so the per-cell
    ``state_on_chain`` reference walks the whole chain per cell —
    O(cells × chain) — while ``resolve_chain`` (what ``version_view``
    and ``select_version`` build on since PR 4) buckets all stored
    states in one pass — O(states). This is the cold-checkout cost of
    a long-history database.
    """
    db = SeedDatabase(harness_schema(), f"checkout-{size}")
    for i in range(size):
        db.create_object("Note", f"Cold{i}")
    db.create_version()
    chain_length = min(max(size // 20, 40), 1_000)
    for i in range(chain_length - 1):
        db.create_object("Doc", f"Churn{i}")
        db.create_version()
    store = db.versions.store
    tip = db.saved_versions()[-1]
    chain = db.versions.tree.chain(tip)
    assert store.resolve_chain(chain) == store.resolve_chain_scan(chain)
    few = max(3, repeats // 2)
    scan = median_time(lambda: store.resolve_chain_scan(chain), few)
    resolve = median_time(lambda: store.resolve_chain(chain), few)
    view_build = median_time(lambda: db.version_view(tip), few)
    return {
        "chain_length": chain_length,
        "cells": store.cell_count(),
        "view_build_s": view_build,
        "bruteforce_s": scan,
        "indexed_s": resolve,
        "speedup": round(scan / resolve, 1) if resolve else None,
    }


def bench_version_walk(size: int, repeats: int) -> dict:
    """``state_on_chain`` over a long chain, raw vs snapshot-consolidated.

    One version per mutation grows a chain of ``size/20`` versions; the
    probed item changed only at the first version, so an uncompacted
    walk descends the whole chain while the consolidated store stops at
    the nearest snapshot (every 16 versions) — the sublinearity claim
    of the PR-3 compaction subsystem.
    """
    chain_length = max(size // 20, 40)
    db = SeedDatabase(harness_schema(), f"versions-{size}")
    db.create_object("Note", "Probe")
    db.create_version()
    for i in range(chain_length - 1):
        db.create_object("Note", f"Churn{i}")
        db.create_version()
    store = db.versions.store
    tip = db.saved_versions()[-1]
    chain = db.versions.tree.chain(tip)
    probe_key = ("o", 1)  # recorded at version 1.0 only: worst-case walk
    raw = median_time(lambda: store.state_on_chain(probe_key, chain), repeats)
    tip_view_before = dict(db.version_view(tip).item_states())
    states_before = store.stored_state_count()
    compaction = db.compact(
        RetentionPolicy(squash_chains=False, snapshot_interval=16)
    )
    consolidated = median_time(
        lambda: store.state_on_chain(probe_key, chain), repeats
    )
    assert dict(db.version_view(tip).item_states()) == tip_view_before
    assert store.state_on_chain(probe_key, chain).name == "Probe"
    return {
        "chain_length": chain_length,
        "walk_bound": store.distance_to_snapshot(chain),
        "stored_states_raw": states_before,
        "stored_states_consolidated": store.stored_state_count(),
        "snapshots": len(compaction.snapshots_created),
        "bruteforce_s": raw,
        "indexed_s": consolidated,
        "speedup": round(raw / consolidated, 1) if consolidated else None,
    }


def bench_completeness(size: int, repeats: int) -> dict:
    """Incremental ``check_completeness`` vs the retained full scan.

    ``size`` tasks, one in ten incomplete; each timed incremental check
    follows ten fresh mutations, so the engine re-derives ten items and
    assembles the report from its gap map while the reference scans all
    ``size`` items against every completeness rule.
    """
    db = SeedDatabase(completeness_schema(), f"complete-{size}")
    titled = []
    for i in range(size):
        task = db.create_object("Task", f"Task{i}")
        if i % 10:
            titled.append(task.add_sub_object("Title", f"title {i}"))
    db.check_completeness()  # prime the gap map

    flips = [0]

    def mutate_and_check() -> None:
        flips[0] += 1
        for title in titled[:10]:
            db.set_value(
                title, None if flips[0] % 2 else f"flip {flips[0]}"
            )
        db.check_completeness()

    incremental = median_time(mutate_and_check, repeats)
    full_scan = median_time(db.check_completeness_scan, repeats)
    incremental_report = db.check_completeness()
    scan_report = db.check_completeness_scan()
    assert sorted(
        (g.kind, g.item, g.element) for g in incremental_report
    ) == sorted((g.kind, g.item, g.element) for g in scan_report)
    return {
        "objects": size,
        "gaps": len(scan_report),
        "dirty_per_check": 10,
        "indexed_s": incremental,
        "bruteforce_s": full_scan,
        "speedup": round(full_scan / incremental, 1) if incremental else None,
    }


def bench_multiuser_concurrent(size: int, repeats: int) -> dict:
    """MVCC snapshot reads vs serialized live reads under a hot writer.

    Eight reader threads retrieve from a server whose writer applies
    bulk check-ins at a ~50% duty cycle (each apply is followed by an
    equal pause — a structural, machine-independent load shape). Two
    read models over a fixed wall-clock window:

    * **serialized** (the pre-PR-7 model): retrieval goes to the live
      master, so a read cannot overlap a mutating check-in — readers
      queue on the writer's mutex and wait out every apply;
    * **MVCC** (PR 7): readers pin the published snapshot — a fully
      materialized immutable view — and keep reading straight through
      the applies; ``reads_during_apply`` counts reads that completed
      while a check-in was mid-apply (the non-blocking evidence).

    The gated speedup is the per-read cost ratio. With a ~50% apply
    duty cycle the serialized model loses about half the window by
    construction, so the expected ratio is ≈2x and stable across
    machines — the gate catches the MVCC path regressing into lock
    coupling, not scheduler noise.
    """
    import random
    import threading

    from repro.multiuser import SeedServer

    readers = 8
    items = [
        {"class": "Note", "name": f"Note{i}"} for i in range(size)
    ]

    def build_server() -> SeedServer:
        server = SeedServer(harness_schema())
        server.master.bulk_load(items, [])
        server.publish_snapshot()
        return server

    # calibrate: one bulk check-in apply at this size bounds the window
    # (the window must span several apply+pause cycles)
    calibration = build_server()
    cal_client = calibration.connect("cal")
    cal_local = cal_client.check_out()
    batch = max(64, min(512, size // 16))
    for j in range(batch):
        cal_local.create_object("Note", f"Cal{j}")
    started = time.perf_counter()
    cal_client.check_in(bulk=True)
    apply_s = time.perf_counter() - started
    window = max(0.25, 4 * apply_s)

    def run_mode(mvcc: bool) -> tuple[int, int, int]:
        """(reads completed, reads mid-apply, check-ins applied)."""
        server = build_server()
        # pin before the writer starts: publication is a write and must
        # not race a bulk apply; the pinned view itself is immutable
        pinned = server.snapshot() if mvcc else None
        mutex = threading.Lock()
        stop = threading.Event()
        in_apply = threading.Event()
        writer_waiting = threading.Event()
        counts = [0] * readers
        during_apply = [0] * readers

        def writer() -> None:
            n = 0
            while not stop.is_set():
                n += 1
                client = server.connect(f"w{n}")
                local = client.check_out()
                for j in range(batch):
                    local.create_object("Note", f"W{n}_{j}")
                applied_at = time.perf_counter()
                if mvcc:
                    in_apply.set()
                    client.check_in(bulk=True)
                    server.publish_snapshot()
                    in_apply.clear()
                else:
                    writer_waiting.set()
                    with mutex:
                        in_apply.set()
                        client.check_in(bulk=True)
                        in_apply.clear()
                    writer_waiting.clear()
                server.disconnect(f"w{n}")
                # ~50% duty cycle: pause as long as the apply took
                stop.wait(time.perf_counter() - applied_at)

        def reader(idx: int) -> None:
            rng = random.Random(idx)
            view = pinned
            master = server.master
            deadline = time.perf_counter() + window
            while time.perf_counter() < deadline:
                name = f"Note{rng.randrange(size)}"
                if mvcc:
                    found = view.find(name)
                    if in_apply.is_set():
                        during_apply[idx] += 1
                else:
                    # pre-PR-7: retrieval waits out the whole apply
                    while writer_waiting.is_set() or in_apply.is_set():
                        if time.perf_counter() >= deadline:
                            return
                        time.sleep(0.0002)
                    with mutex:
                        found = master.find_object(name)
                assert found is not None
                counts[idx] += 1

        writer_thread = threading.Thread(target=writer, daemon=True)
        reader_threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(readers)
        ]
        writer_thread.start()
        for thread in reader_threads:
            thread.start()
        for thread in reader_threads:
            thread.join()
        stop.set()
        writer_thread.join(timeout=30)
        return sum(counts), sum(during_apply), server.checkins_applied

    few = max(3, repeats // 2)
    gc.collect()
    mvcc_runs = [run_mode(mvcc=True) for __ in range(few)]
    serial_runs = [run_mode(mvcc=False) for __ in range(few)]
    mvcc_reads = statistics.median(run[0] for run in mvcc_runs)
    serial_reads = statistics.median(run[0] for run in serial_runs)
    mvcc_per_read = window / mvcc_reads if mvcc_reads else None
    serial_per_read = window / serial_reads if serial_reads else None
    return {
        "objects": size,
        "readers": readers,
        "batch": batch,
        "apply_s": apply_s,
        "window_s": window,
        "reads_during_apply": max(run[1] for run in mvcc_runs),
        "checkins_mvcc": max(run[2] for run in mvcc_runs),
        "read_throughput_per_s": round(mvcc_reads / window, 1),
        "bruteforce_s": serial_per_read,
        "indexed_s": mvcc_per_read,
        "speedup": (
            round(serial_per_read / mvcc_per_read, 1)
            if mvcc_per_read and serial_per_read
            else None
        ),
    }


def parallel_schema():
    """Value-typed notes over a doc/code web (the sharded-scan workload)."""
    builder = SchemaBuilder("parq")
    builder.entity_class("Doc")
    builder.entity_class("Code")
    builder.entity_class("Note", sort="STRING")
    builder.association(
        "Mentions",
        ("doc", "Doc", "0..*"),
        ("code", "Code", "0..*"),
    )
    builder.association(
        "Covers",
        ("note", "Note", "0..*"),
        ("doc", "Doc", "0..*"),
    )
    return builder.build()


def bench_multijoin_parallel(size: int, repeats: int) -> dict:
    """Sharded parallel scan kernels vs the serial streaming executor.

    ``size`` value-typed notes (~1000 distinct tags), one ``Covers``
    edge per note onto ``size/10`` docs, six ``Mentions`` per doc:
    the query "codes mentioned by docs covered by tag7 notes" is
    dominated by the selective σ over the full Note extent — exactly
    the Select-over-ExtentScan chain :func:`repro.core.query.planner.
    _parallelize` shards. Both paths run the *same* optimized join
    order (the ``Parallel`` wrapper only replaces the driving scan);
    the parallel side dispatches fused per-shard kernels that test
    specialized predicates in a tight loop over the shard's oid list
    instead of streaming rows through the generator protocol, and adds
    pool-level concurrency on multi-core hosts. Below the default
    costing threshold (sizes < 100k) the config deliberately resolves
    to the serial plan, so small sizes gate dispatch overhead staying
    at zero rather than a speedup. Row multisets are verified
    identical before timing.
    """
    db = SeedDatabase(parallel_schema(), f"parq-{size}")
    doc_count = max(size // 10, 5)
    code_count = max(size // 10, 5)
    db.bulk_load(
        objects=[{"class": "Doc", "name": f"Doc{i}"} for i in range(doc_count)]
        + [{"class": "Code", "name": f"Code{i}"} for i in range(code_count)]
        + [
            {"class": "Note", "name": f"Note{i}", "value": f"tag{i % 997}"}
            for i in range(size)
        ],
        relationships=[
            {
                "association": "Mentions",
                "bindings": {
                    "doc": f"Doc{i}",
                    "code": f"Code{(i * 6 + offset) % code_count}",
                },
            }
            for i in range(doc_count)
            for offset in range(6)
        ]
        + [
            {
                "association": "Covers",
                "bindings": {"note": f"Note{i}", "doc": f"Doc{i % doc_count}"},
            }
            for i in range(size)
        ],
    )
    query = (
        plan(db)
        .extent("Note", column="note")
        .select(on("note", value_is("tag7")))
        .join(plan(db).relationship("Covers"))
        .join(plan(db).relationship("Mentions"))
        .project("code")
    )
    config = ParallelConfig()  # default costing decides serial vs parallel
    serial_rows = query.execute()
    parallel_rows = query.execute(parallel=config)
    assert sorted(o.oid for o in serial_rows.column("code")) == sorted(
        o.oid for o in parallel_rows.column("code")
    )
    parallelized = "Parallel" in query.explain(parallel=config)
    few = max(3, repeats // 2)
    serial_s = median_time(lambda: query.execute(), few)
    parallel_s = median_time(lambda: query.execute(parallel=config), few)
    return {
        "notes": size,
        "covers": size,
        "mentions": doc_count * 6,
        "result_rows": len(parallel_rows),
        "parallelized": parallelized,
        "shards": config.shards,
        "backend": config.resolved_backend(),
        "bruteforce_s": serial_s,
        "indexed_s": parallel_s,
        "speedup": round(serial_s / parallel_s, 1) if parallel_s else None,
    }


def bench_durability(size: int, repeats: int) -> dict:
    """Durable check-in: write-ahead delta vs full-image checkpoint.

    A journal-bound server with ``size`` objects in the master. Before
    PR 6 the only way to make a check-in durable was to rewrite a full
    database image — O(database) per check-in. The write-ahead path
    appends one delta record (the check-in package) before the master
    applies it — O(change), with identical recovery semantics (the
    crash matrix in ``tests/test_crash_matrix.py`` proves equivalence).
    Timed here: one complete durable check-in (check-out, one creation,
    check-in with its delta append + fsync) against one
    :meth:`~repro.core.storage.engine.JournaledDatabase.checkpoint` of
    the same database. Byte costs are reported alongside.
    """
    import tempfile

    from repro.multiuser import SeedServer

    with tempfile.TemporaryDirectory(prefix="seed-bench-") as tmp:
        path = Path(tmp) / "central.seed"
        server = SeedServer.open(
            path, schema=harness_schema(), name=f"durable-{size}"
        )
        server.master.bulk_load(
            [{"class": "Note", "name": f"Note{i}"} for i in range(size)], []
        )
        journal = server.journal
        before = journal._file.size_bytes()  # noqa: SLF001 - byte accounting
        server.checkpoint()
        image_bytes = journal._file.size_bytes() - before  # noqa: SLF001

        counter = [0]

        def durable_checkin() -> None:
            counter[0] += 1
            client = server.connect(f"writer{counter[0]}")
            local = client.check_out()
            local.create_object("Note", f"Delta{counter[0]}")
            client.check_in()

        before = journal._file.size_bytes()  # noqa: SLF001
        durable_checkin()
        delta_bytes = journal._file.size_bytes() - before  # noqa: SLF001

        few = max(3, repeats // 2)
        checkin = median_time(durable_checkin, few)
        checkpoint = median_time(server.checkpoint, few)
        return {
            "objects": size,
            "image_bytes": image_bytes,
            "delta_bytes": delta_bytes,
            "bruteforce_s": checkpoint,
            "indexed_s": checkin,
            "speedup": round(checkpoint / checkin, 1) if checkin else None,
        }


def bench_durability_txn(size: int, repeats: int) -> dict:
    """Durable direct transaction: write-ahead txn delta vs checkpoint.

    A journal-bound database with ``size`` objects, mutated *directly*
    (no check-out/check-in). Before PR 9 a direct commit was only
    durable from the next full-image checkpoint — O(database) per
    transaction if every commit must survive a crash. The post-commit
    txn sink appends one delta record covering exactly the items the
    transaction touched — O(change), with replay equivalence proved by
    the crash matrix (``tests/test_crash_matrix.py``). Timed here: one
    committed single-object transaction through the sink against one
    :meth:`~repro.core.storage.engine.JournaledDatabase.checkpoint` of
    the same database. Byte costs are reported alongside.
    """
    import tempfile

    from repro.core.storage import JournaledDatabase

    with tempfile.TemporaryDirectory(prefix="seed-bench-") as tmp:
        path = Path(tmp) / "txn.seed"
        journal = JournaledDatabase.open(
            path, schema=harness_schema(), name=f"txn-{size}"
        )
        db = journal.db
        with journal.suspended_txn_sink():  # setup is not the workload
            db.bulk_load(
                [{"class": "Note", "name": f"Note{i}"} for i in range(size)],
                [],
            )
        before = journal._file.size_bytes()  # noqa: SLF001 - byte accounting
        journal.checkpoint()
        image_bytes = journal._file.size_bytes() - before  # noqa: SLF001

        counter = [0]

        def durable_txn() -> None:
            counter[0] += 1
            with db.transaction():
                db.create_object("Note", f"Txn{counter[0]}")

        before = journal._file.size_bytes()  # noqa: SLF001
        durable_txn()
        delta_bytes = journal._file.size_bytes() - before  # noqa: SLF001

        few = max(3, repeats // 2)
        txn = median_time(durable_txn, few)
        checkpoint = median_time(journal.checkpoint, few)
        return {
            "objects": size,
            "image_bytes": image_bytes,
            "delta_bytes": delta_bytes,
            "bruteforce_s": checkpoint,
            "indexed_s": txn,
            "speedup": round(checkpoint / txn, 1) if txn else None,
        }


def bench_durability_group_commit(size: int, repeats: int) -> dict:
    """Group commit: one fsync per batch vs one fsync per commit.

    The PR-10 scenario. A journal-bound database with ``size`` objects
    runs a hot loop of 1 000 committed single-object transactions (200
    at the small tier), once under the strict default (every commit
    appends and fsyncs its own ``txn`` record before returning) and
    once under :class:`~repro.core.storage.engine.GroupCommitPolicy`
    batching (records buffer until ``max_txns``/``max_bytes``/
    ``max_delay_s``, then one ``append_many`` — one fsync — drains the
    batch; the loop ends with an explicit ``flush()`` so both variants
    finish fully durable). The speedup is the price of per-commit
    durability, which group commit trades for a bounded loss window.

    The same section also measures streamed checkpoint images: peak
    traced memory (``tracemalloc``) of one monolithic
    ``checkpoint()`` — which materializes the full image dict before
    framing — against one ``checkpoint(streamed=True)``, which frames
    schema header and per-item records straight off
    :func:`~repro.core.storage.serialize.iter_image_records`.
    """
    import tempfile
    import tracemalloc

    from repro.core.storage import GroupCommitPolicy, JournaledDatabase

    commits = 1_000 if size >= 10_000 else 200

    def open_journal(tmp: str, policy):
        journal = JournaledDatabase.open(
            Path(tmp) / "gc.seed",
            schema=harness_schema(),
            name=f"gc-{size}",
            group_commit=policy,
        )
        with journal.suspended_txn_sink():  # setup is not the workload
            journal.db.bulk_load(
                [{"class": "Note", "name": f"Note{i}"} for i in range(size)],
                [],
            )
        return journal

    def hot_loop(policy) -> tuple[float, int]:
        with tempfile.TemporaryDirectory(prefix="seed-bench-") as tmp:
            journal = open_journal(tmp, policy)
            db = journal.db
            started = time.perf_counter()
            for i in range(commits):
                with db.transaction():
                    db.create_object("Note", f"Hot{i}")
            journal.flush()  # end the loop fully durable in both modes
            return time.perf_counter() - started, journal.group_flushes

    policy = GroupCommitPolicy(
        max_txns=128, max_bytes=1 << 20, max_delay_s=10.0
    )
    few = max(2, repeats // 3)
    strict_s = min(hot_loop(None)[0] for _ in range(few))
    batched = [hot_loop(policy) for _ in range(few)]
    batched_s = min(elapsed for elapsed, __ in batched)

    with tempfile.TemporaryDirectory(prefix="seed-bench-") as tmp:
        journal = open_journal(tmp, None)
        tracemalloc.start()
        journal.checkpoint()
        mono_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.reset_peak()
        journal.checkpoint(streamed=True)
        streamed_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

    return {
        "objects": size,
        "commits": commits,
        "fsyncs_batched": batched[0][1],
        "bruteforce_s": strict_s,
        "indexed_s": batched_s,
        "speedup": round(strict_s / batched_s, 1) if batched_s else None,
        "checkpoint_peak_bytes": mono_peak,
        "streamed_checkpoint_peak_bytes": streamed_peak,
        "checkpoint_memory_ratio": (
            round(mono_peak / streamed_peak, 1) if streamed_peak else None
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smallest size, fewer repeats",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        help="override the database sizes to benchmark",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_PR10.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--gate-planner",
        action="store_true",
        help="fail (exit 2) if the planner evaluates the multi-join "
             "scenario slower than the eager algebra at any size",
    )
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes else (
        QUICK_SIZES if args.quick else FULL_SIZES
    )
    repeats = 3 if args.quick else 7

    report = {
        "benchmark": (
            "PR10: group-commit batching and streamed checkpoint images"
        ),
        "quick": args.quick,
        "python": sys.version.split()[0],
        "repeats": repeats,
        "results": {},
    }
    for size in sizes:
        print(f"benchmarking size {size} ...", flush=True)
        if size >= PARALLEL_ONLY_SIZE:
            # 1M tier: the other sections' brute-force baselines are
            # infeasible here; only the parallel scan section runs
            report["results"][str(size)] = {
                "objects": size,
                "parallel_only_tier": True,
                "multijoin_parallel": bench_multijoin_parallel(size, repeats),
            }
            continue
        data = bench_size(size, repeats)
        data["version_walk"] = bench_version_walk(size, repeats)
        data["completeness_incremental"] = bench_completeness(size, repeats)
        data["bulk_ingest"] = bench_bulk_ingest(size, repeats)
        data["checkout_cold"] = bench_checkout_cold(size, repeats)
        data["multijoin_drift"] = bench_multijoin_drift(size, repeats)
        data["durability"] = bench_durability(size, repeats)
        data["durability_txn"] = bench_durability_txn(size, repeats)
        data["durability_group_commit"] = bench_durability_group_commit(
            size, repeats
        )
        data["multiuser_concurrent"] = bench_multiuser_concurrent(
            size, repeats
        )
        data["multijoin_parallel"] = bench_multijoin_parallel(size, repeats)
        report["results"][str(size)] = data

    acceptance = {}
    at_10k = report["results"].get("10000")
    if at_10k:
        acceptance["extent_speedup_at_10k"] = at_10k["query_extent"]["speedup"]
        acceptance["extent_speedup_ok"] = at_10k["query_extent"]["speedup"] >= 5
        acceptance["acyclic_commit_speedup_at_10k"] = at_10k["commit_acyclic"][
            "speedup"
        ]
        acceptance["acyclic_commit_speedup_ok"] = (
            at_10k["commit_acyclic"]["speedup"] >= 10
        )
        acceptance["multijoin_speedup_at_10k"] = at_10k["query_multijoin"][
            "speedup"
        ]
        acceptance["multijoin_speedup_ok"] = (
            at_10k["query_multijoin"]["speedup"] >= 5
        )
        acceptance["version_walk_speedup_at_10k"] = at_10k["version_walk"][
            "speedup"
        ]
        acceptance["version_walk_speedup_ok"] = (
            at_10k["version_walk"]["speedup"] >= 5
        )
        acceptance["completeness_speedup_at_10k"] = at_10k[
            "completeness_incremental"
        ]["speedup"]
        acceptance["completeness_speedup_ok"] = (
            at_10k["completeness_incremental"]["speedup"] >= 5
        )
        acceptance["bulk_ingest_speedup_at_10k"] = at_10k["bulk_ingest"][
            "speedup"
        ]
        acceptance["bulk_ingest_speedup_ok"] = (
            at_10k["bulk_ingest"]["speedup"] >= 10
        )
        acceptance["checkout_cold_speedup_at_10k"] = at_10k["checkout_cold"][
            "speedup"
        ]
        acceptance["checkout_cold_speedup_ok"] = (
            at_10k["checkout_cold"]["speedup"] >= 10
        )
        acceptance["multijoin_drift_speedup_at_10k"] = at_10k[
            "multijoin_drift"
        ]["speedup"]
        acceptance["multijoin_drift_speedup_ok"] = (
            at_10k["multijoin_drift"]["speedup"] >= 2
        )
        acceptance["durability_speedup_at_10k"] = at_10k["durability"][
            "speedup"
        ]
        acceptance["durability_speedup_ok"] = (
            at_10k["durability"]["speedup"] >= 2
        )
        acceptance["durability_txn_speedup_at_10k"] = at_10k[
            "durability_txn"
        ]["speedup"]
        acceptance["durability_txn_speedup_ok"] = (
            at_10k["durability_txn"]["speedup"] >= 2
        )
        # O(change): one txn delta must stay a small fraction of the image
        acceptance["durability_txn_delta_fraction_at_10k"] = round(
            at_10k["durability_txn"]["delta_bytes"]
            / at_10k["durability_txn"]["image_bytes"],
            4,
        )
        acceptance["durability_txn_delta_small_ok"] = (
            at_10k["durability_txn"]["delta_bytes"]
            < at_10k["durability_txn"]["image_bytes"] / 10
        )
        acceptance["group_commit_speedup_at_10k"] = at_10k[
            "durability_group_commit"
        ]["speedup"]
        acceptance["group_commit_speedup_ok"] = (
            at_10k["durability_group_commit"]["speedup"] >= 3
        )
        acceptance["streamed_checkpoint_memory_ratio_at_10k"] = at_10k[
            "durability_group_commit"
        ]["checkpoint_memory_ratio"]
        # streaming must beat the monolithic image dict by at least 2x
        acceptance["streamed_checkpoint_memory_ok"] = (
            at_10k["durability_group_commit"][
                "streamed_checkpoint_peak_bytes"
            ]
            < at_10k["durability_group_commit"]["checkpoint_peak_bytes"] / 2
        )
        acceptance["multiuser_concurrent_speedup_at_10k"] = at_10k[
            "multiuser_concurrent"
        ]["speedup"]
        # the ~50% writer duty cycle makes ≈2x the structural floor
        acceptance["multiuser_concurrent_speedup_ok"] = (
            at_10k["multiuser_concurrent"]["speedup"] >= 1.5
        )
        acceptance["multiuser_reads_during_apply"] = at_10k[
            "multiuser_concurrent"
        ]["reads_during_apply"]
        acceptance["multiuser_reads_nonblocking_ok"] = (
            at_10k["multiuser_concurrent"]["reads_during_apply"] > 0
        )
        # 10k sits below the parallel costing threshold: the config must
        # resolve to the serial plan, i.e. stay within noise of x1.0
        acceptance["multijoin_parallel_speedup_at_10k"] = at_10k[
            "multijoin_parallel"
        ]["speedup"]
        acceptance["multijoin_parallel_serial_below_threshold"] = (
            not at_10k["multijoin_parallel"]["parallelized"]
        )
        acceptance["multijoin_parallel_no_overhead_ok"] = (
            at_10k["multijoin_parallel"]["speedup"] >= 0.8
        )
    at_1m = report["results"].get("1000000")
    if at_1m:
        acceptance["multijoin_parallel_speedup_at_1m"] = at_1m[
            "multijoin_parallel"
        ]["speedup"]
        acceptance["multijoin_parallel_speedup_ok"] = (
            at_1m["multijoin_parallel"]["speedup"] >= 2
        )
    report["acceptance"] = acceptance

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    for size, data in report["results"].items():
        if data.get("parallel_only_tier"):
            print(
                f"  {size}: multijoin parallel "
                f"x{data['multijoin_parallel']['speedup']} "
                f"({data['multijoin_parallel']['backend']}, "
                f"{data['multijoin_parallel']['shards']} shards, "
                "parallel-only tier)"
            )
            continue
        print(
            f"  {size}: extent x{data['query_extent']['speedup']}, "
            f"prefix x{data['query_name_prefix']['speedup']}, "
            f"participation x{data['count_participations']['speedup']}, "
            f"acyclic commit x{data['commit_acyclic']['speedup']}, "
            f"multijoin x{data['query_multijoin']['speedup']}, "
            f"version walk x{data['version_walk']['speedup']}, "
            f"completeness x{data['completeness_incremental']['speedup']}, "
            f"bulk ingest x{data['bulk_ingest']['speedup']}, "
            f"checkout cold x{data['checkout_cold']['speedup']}, "
            f"multijoin drift x{data['multijoin_drift']['speedup']}, "
            f"durability x{data['durability']['speedup']}, "
            f"txn durability x{data['durability_txn']['speedup']}, "
            f"group commit x{data['durability_group_commit']['speedup']}, "
            f"concurrent reads x{data['multiuser_concurrent']['speedup']}, "
            f"multijoin parallel x{data['multijoin_parallel']['speedup']}"
        )
    if args.gate_planner:
        # compare raw medians, not the rounded display value: a 5%
        # regression must not hide behind round(0.96, 1) == 1.0
        slow = {
            size: data["query_multijoin"]["speedup"]
            for size, data in report["results"].items()
            if "query_multijoin" in data
            and data["query_multijoin"]["planner_s"]
            >= data["query_multijoin"]["eager_s"]
        }
        if slow:
            print(f"planner slower than eager algebra: {slow}")
            return 2
        print("planner gate ok: multijoin speedup >= 1x at every size")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
