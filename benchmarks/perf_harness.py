"""Repeatable performance harness: create / relate / query / commit.

Times the hot paths the PR-1 index layer targets, at several database
sizes, against the seed's brute-force implementations (which are kept
in the tree as reference code: :func:`repro.core.indexes.brute_objects`,
``count_participations_scan``, ``validate_acyclic(use_index=False)``).
Results are written to ``BENCH_PR1.json`` at the repository root so
future PRs have a perf trajectory to compare against.

Run::

    PYTHONPATH=src python benchmarks/perf_harness.py            # full: 1k/10k/50k
    PYTHONPATH=src python benchmarks/perf_harness.py --quick    # CI smoke: 1k

This is a standalone script, deliberately not a pytest module: the
timings are workload benchmarks, not assertions (the figure/claim
regenerations under ``benchmarks/test_*.py`` stay pytest-based).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.database import SeedDatabase  # noqa: E402
from repro.core.indexes import brute_objects  # noqa: E402
from repro.core.query.retrieval import Retrieval  # noqa: E402
from repro.core.schema.builder import SchemaBuilder  # noqa: E402

FULL_SIZES = (1_000, 10_000, 50_000)
QUICK_SIZES = (1_000,)


def harness_schema():
    """A small mixed schema: class family + an ACYCLIC association."""
    builder = SchemaBuilder("perf")
    builder.entity_class("Artifact")
    builder.entity_class("Doc", specializes="Artifact")
    builder.entity_class("Code", specializes="Artifact")
    builder.entity_class("Note", specializes="Artifact")
    builder.entity_class("Step")
    builder.association(
        "Contained",
        ("contained", "Step", "0..*"),
        ("container", "Step", "0..*"),
        acyclic=True,
    )
    return builder.build()


def median_time(fn, repeats: int) -> float:
    """Median wall-clock seconds of *repeats* calls of *fn*."""
    samples = []
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def bench_size(size: int, repeats: int) -> dict:
    """All measurements for one database size."""
    db = SeedDatabase(harness_schema(), f"perf-{size}")
    retrieval = Retrieval(db)
    result: dict = {"objects": size, "acyclic_edges": size}

    # -- create: `size` objects, every 10th a Doc -----------------------
    classes = ["Doc"] + ["Code"] * 5 + ["Note"] * 4
    started = time.perf_counter()
    for i in range(size):
        db.create_object(classes[i % 10], f"Obj{i}")
    elapsed = time.perf_counter() - started
    result["create_objects_s"] = elapsed
    result["create_objects_per_s"] = round(size / elapsed)

    # -- relate: a Contained forest of `size` edges ---------------------
    # containers form chains of 10; each leaf hangs off one container,
    # so incremental reachability walks at most ~10 nodes
    container_count = max(size // 10, 1)
    containers = [
        db.create_object("Step", f"Container{i}") for i in range(container_count)
    ]
    for i in range(1, container_count):
        if i % 10:
            db.relate(
                "Contained",
                contained=containers[i],
                container=containers[i - 1],
            )
    chain_edges = sum(1 for i in range(1, container_count) if i % 10)
    leaves = [db.create_object("Step", f"Leaf{i}") for i in range(size - chain_edges)]
    started = time.perf_counter()
    for i, leaf in enumerate(leaves):
        db.relate(
            "Contained",
            contained=leaf,
            container=containers[i % container_count],
        )
    elapsed = time.perf_counter() - started
    result["create_relationships_s"] = elapsed
    result["create_relationships_per_s"] = round(len(leaves) / elapsed)

    # -- query: class extent, indexed vs. seed full scan ----------------
    indexed = median_time(lambda: db.objects("Doc"), repeats)
    brute = median_time(lambda: brute_objects(db, "Doc"), repeats)
    assert [o.oid for o in db.objects("Doc")] == [
        o.oid for o in brute_objects(db, "Doc")
    ]
    result["query_extent"] = {
        "extent_size": len(db.objects("Doc")),
        "indexed_s": indexed,
        "bruteforce_s": brute,
        "speedup": round(brute / indexed, 1) if indexed else None,
    }

    # -- query: name prefix, bisect vs. seed full scan ------------------
    prefix = "Obj1"
    indexed = median_time(lambda: retrieval.by_name_prefix(prefix), repeats)
    brute = median_time(
        lambda: [
            obj
            for obj in brute_objects(db, independent_only=True)
            if obj.simple_name.startswith(prefix)
        ],
        repeats,
    )
    result["query_name_prefix"] = {
        "matches": len(retrieval.by_name_prefix(prefix)),
        "indexed_s": indexed,
        "bruteforce_s": brute,
        "speedup": round(brute / indexed, 1) if indexed else None,
    }

    # -- query: participation count, counter vs. enumeration ------------
    association = db.schema.association("Contained")
    busy = containers[0]
    indexed = median_time(
        lambda: db.patterns.count_participations(busy, association, 1), repeats
    )
    brute = median_time(
        lambda: db.patterns.count_participations_scan(busy, association, 1),
        repeats,
    )
    assert db.patterns.count_participations(
        busy, association, 1
    ) == db.patterns.count_participations_scan(busy, association, 1)
    result["count_participations"] = {
        "count": db.patterns.count_participations(busy, association, 1),
        "indexed_s": indexed,
        "bruteforce_s": brute,
        "speedup": round(brute / indexed, 1) if indexed else None,
    }

    # -- commit: one relationship into the ACYCLIC association ----------
    # the seed re-derived the whole family graph and DFS-walked it on
    # every such commit; that full check is timed as the baseline
    commit_samples = []
    for i in range(repeats):
        extra = db.create_object("Step", f"Extra{i}")
        started = time.perf_counter()
        db.relate(
            "Contained",
            contained=extra,
            container=containers[i % container_count],
        )
        commit_samples.append(time.perf_counter() - started)
    commit = statistics.median(commit_samples)
    full_check = median_time(
        lambda: db.consistency.validate_acyclic(association, use_index=False),
        repeats,
    )
    indexed_full_check = median_time(
        lambda: db.consistency.validate_acyclic(association), repeats
    )
    result["commit_acyclic"] = {
        "graph_edges": size + repeats,
        "indexed_commit_s": commit,
        "seed_full_check_s": full_check,
        "indexed_full_check_s": indexed_full_check,
        "speedup": round(full_check / commit, 1) if commit else None,
    }

    # -- commit: version snapshot over the dirty set --------------------
    started = time.perf_counter()
    db.create_version()
    result["create_version_s"] = time.perf_counter() - started

    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smallest size, fewer repeats",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        help="override the database sizes to benchmark",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_PR1.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes else (
        QUICK_SIZES if args.quick else FULL_SIZES
    )
    repeats = 3 if args.quick else 7

    report = {
        "benchmark": "PR1: indexed extents + incremental consistency",
        "quick": args.quick,
        "python": sys.version.split()[0],
        "repeats": repeats,
        "results": {},
    }
    for size in sizes:
        print(f"benchmarking size {size} ...", flush=True)
        report["results"][str(size)] = bench_size(size, repeats)

    acceptance = {}
    at_10k = report["results"].get("10000")
    if at_10k:
        acceptance["extent_speedup_at_10k"] = at_10k["query_extent"]["speedup"]
        acceptance["extent_speedup_ok"] = at_10k["query_extent"]["speedup"] >= 5
        acceptance["acyclic_commit_speedup_at_10k"] = at_10k["commit_acyclic"][
            "speedup"
        ]
        acceptance["acyclic_commit_speedup_ok"] = (
            at_10k["commit_acyclic"]["speedup"] >= 10
        )
    report["acceptance"] = acceptance

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    for size, data in report["results"].items():
        print(
            f"  {size}: extent x{data['query_extent']['speedup']}, "
            f"prefix x{data['query_name_prefix']['speedup']}, "
            f"participation x{data['count_participations']['speedup']}, "
            f"acyclic commit x{data['commit_acyclic']['speedup']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
