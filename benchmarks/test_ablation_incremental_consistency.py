"""[C4] Ablation: incremental vs whole-database consistency checking.

"Whenever an update operation is executed, SEED checks all consistency
rules ... that apply to the data being updated." The design choice under
test is the *scoping*: checking only the touched items (SEED) versus
re-validating the whole database after every update (the naive way to
"permanently ensure consistency"). Both give the same guarantee — the
property suite proves incremental ≡ global — so the ablation measures
what the scoping buys as the database grows.
"""

from __future__ import annotations

import time

from repro.core import SeedDatabase
from repro.spades import SpadesTool, spades_schema
from repro.workloads import SpecShape, generate_spec, load_into_spades

from conftest import report, series_table


def populated_db(size: int) -> SeedDatabase:
    spec = generate_spec(
        SpecShape(actions=size, data=size, flows=size, vague_fraction=0.0),
        seed=404,
    )
    return load_into_spades(spec, SpadesTool(f"abl{size}")).db


def one_update(db: SeedDatabase, serial: int) -> None:
    target = db.objects("Data", include_specials=False)[0]
    target.add_sub_object("Note", f"note {serial}")


def test_c4_incremental_update_cost(benchmark):
    db = populated_db(40)
    serial = [0]

    def update():
        serial[0] += 1
        one_update(db, serial[0])

    benchmark(update)
    assert db.check_consistency() == []


def test_c4_global_validation_cost(benchmark):
    db = populated_db(40)

    def full_validation():
        return db.check_consistency()

    violations = benchmark(full_validation)
    assert violations == []


def test_c4_scaling_sweep(benchmark):
    """Incremental cost stays flat while global cost grows with size."""
    rows = []
    incremental_costs = []
    global_costs = []
    for size in (10, 20, 40):
        db = populated_db(size)

        start = time.perf_counter()
        for serial in range(20):
            one_update(db, serial)
        incremental = (time.perf_counter() - start) / 20

        start = time.perf_counter()
        for __ in range(5):
            db.check_consistency()
        global_cost = (time.perf_counter() - start) / 5

        incremental_costs.append(incremental)
        global_costs.append(global_cost)
        rows.append(
            (
                size,
                f"{incremental * 1e6:.0f}",
                f"{global_cost * 1e6:.0f}",
                f"x{global_cost / incremental:.1f}",
            )
        )
    # shape: the advantage of incremental checking grows with size
    assert global_costs[-1] / incremental_costs[-1] > global_costs[0] / incremental_costs[0]
    report(
        "C4",
        "per-update cost: incremental (SEED) vs whole-database validation (µs)",
        series_table(
            ("size", "incremental µs", "global µs", "global/incremental"), rows
        ),
    )
    db = populated_db(10)
    serial = [100]

    def update():
        serial[0] += 1
        one_update(db, serial[0])

    benchmark(update)
