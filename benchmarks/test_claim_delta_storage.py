"""[C2] "When creating a version we do not save the complete database."

Measures the delta version store against the full-copy baseline and the
file-level (RCS-style) related-work approach on identical evolution
histories: a specification of N items undergoes S sessions, each
touching a small fraction, snapshotting after every session.

Expected shape (the paper's design argument): delta storage grows with
*change volume* (≈ initial size + S × touches), full-copy storage with
*database volume* (≈ S × size); the gap widens with database size. The
file store must re-serialise everything per check-in and cannot answer
item-history queries directly.
"""

from __future__ import annotations

from repro.baselines import FileVersionStore
from repro.spades import SpadesTool, print_spec
from repro.workloads import (
    EvolutionShape,
    SpecShape,
    generate_spec,
    load_into_spades,
    run_evolution,
)

from conftest import report, series_table

SESSIONS = 8
TOUCHES = 4


def build_tool(size: int) -> SpadesTool:
    spec = generate_spec(
        SpecShape(actions=size, data=size, flows=size, vague_fraction=0.0),
        seed=202,
    )
    return load_into_spades(spec, SpadesTool(f"evo{size}"))


def test_c2_delta_vs_fullcopy_sweep(benchmark):
    rows = []
    results = {}
    for size in (10, 20, 40):
        tool = build_tool(size)
        result = run_evolution(
            tool.db,
            EvolutionShape(sessions=SESSIONS, touches_per_session=TOUCHES),
            seed=202,
        )
        results[size] = result
        rows.append(
            (
                size,
                result.live_items_final,
                result.delta_states,
                result.fullcopy_states,
                f"x{result.savings_factor:.1f}",
            )
        )
    # shape assertions: delta always smaller, and the savings factor
    # grows with database size (full copies scale with size, deltas with
    # change volume)
    factors = [results[size].savings_factor for size in (10, 20, 40)]
    assert all(f > 1.0 for f in factors)
    assert factors[-1] > factors[0]
    report(
        "C2",
        "delta vs full-copy snapshot storage "
        f"({SESSIONS} sessions x {TOUCHES} touches)",
        series_table(
            ("size", "live items", "delta states", "fullcopy states", "savings"),
            rows,
        ),
    )

    # benchmark the delta snapshot operation itself on the largest db
    tool = build_tool(40)
    target = tool.db.objects("Data", include_specials=False)[0]
    toggle = [0]

    def one_session_snapshot():
        toggle[0] += 1
        target.add_sub_object("Note", f"session {toggle[0]}")
        return tool.db.create_version()

    benchmark(one_session_snapshot)


def test_c2_file_level_versioning_comparison(benchmark):
    """File-level check-in re-serialises the whole document each time."""
    tool = build_tool(20)
    store = FileVersionStore()

    def check_in_session(session):
        target = tool.db.objects("Data", include_specials=False)[
            session % 10
        ]
        target.add_sub_object("Note", f"session {session}")
        store.check_in(print_spec(tool), log=f"session {session}")

    for session in range(SESSIONS):
        check_in_session(session)
    assert store.head_number == SESSIONS

    # item-history on the file level = reconstruct and scan every
    # revision; on SEED it is one cell lookup
    def file_item_history():
        return store.item_history("Alarm0")

    benchmark(file_item_history)

    name = tool.db.objects("Data", include_specials=False)[0].simple_name
    revisions = store.item_history(name)
    assert revisions  # found by scanning
    report(
        "C2",
        "file-level (RCS-style) comparison",
        f"{SESSIONS} check-ins, stored lines: {store.stored_line_count()}; "
        f"item history of {name!r} needs {store.head_number} full "
        "check-outs — SEED answers from one version cell",
    )


def test_c2_seed_item_history_direct(benchmark):
    tool = build_tool(20)
    for session in range(SESSIONS):
        target = tool.db.objects("Data", include_specials=False)[session % 10]
        target.add_sub_object("Note", f"session {session}")
        tool.db.create_version()
    oid = tool.db.objects("Data", include_specials=False)[0].oid

    def seed_item_history():
        return tool.db.history.versions_of_item(("o", oid))

    entries = benchmark(seed_item_history)
    assert entries
