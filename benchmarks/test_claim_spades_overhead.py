"""[C1] "SPADES has become considerably slower, but much more flexible."

The paper's only performance statement. Both halves are measured here:

* **slower** — the same generated specification workload is entered
  through the SEED-backed SPADES tool and through the hand-coded
  fixed-schema store; the generic object graph plus per-update
  consistency checking costs a constant factor (the paper's
  "considerably slower"). We report the factor; the expected shape is
  SEED slower by roughly one order of magnitude, NOT faster.
* **more flexible** — extending the model is a schema change for the
  SEED tool (no tool code) but a NotImplementedError for the hand-coded
  store; and vague flows are representable only on the SEED side (the
  hand-coded driver must invent directions, losing information).
"""

from __future__ import annotations

import time

from repro.baselines import HandCodedSpecStore
from repro.spades import SpadesTool, spades_schema
from repro.workloads import SpecShape, generate_spec, load_into_handcoded, load_into_spades

from conftest import report, series_table

SHAPE = SpecShape(actions=25, data=25, flows=50, vague_fraction=0.2)
SPEC = generate_spec(SHAPE, seed=101)


def test_c1_seed_backed_tool(benchmark):
    def run():
        return load_into_spades(SPEC, SpadesTool("c1"))

    tool = benchmark(run)
    stats = tool.db.statistics()
    assert stats["relationships"] >= len(SPEC.flows) + len(SPEC.containments)
    assert tool.db.check_consistency() == []


def test_c1_handcoded_tool(benchmark):
    def run():
        return load_into_handcoded(SPEC, HandCodedSpecStore(), seed=101)

    store, forced = benchmark(run)
    assert store.statistics()["objects"] == len(SPEC.action_names) + len(
        SPEC.data_names
    )
    # information loss: every vague flow needed an invented direction
    assert forced == sum(1 for kind, __, __ in SPEC.flows if kind == "vague") > 0


def test_c1_slowdown_factor_and_flexibility(benchmark):
    # measure both sides explicitly to report the paper's trade-off
    def timed(fn, repeat=3):
        best = float("inf")
        for __ in range(repeat):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    seed_seconds = timed(lambda: load_into_spades(SPEC, SpadesTool("x")))
    handcoded_seconds = timed(
        lambda: load_into_handcoded(SPEC, HandCodedSpecStore(), seed=101)
    )
    slowdown = seed_seconds / handcoded_seconds

    # --- the "slower" half: SEED costs, it must not win ---
    assert slowdown > 1.0, "SEED should be slower than hand-coded storage"

    # --- the "more flexible" half ---
    # (a) vague information is representable only on the SEED side
    vague = sum(1 for kind, __, __ in SPEC.flows if kind == "vague")
    # (b) a model extension: new item kind 'Interface' below Thing
    extended = spades_schema()  # build a fresh schema and extend it
    extended.add_class(
        type(extended.entity_class("Thing"))("Interface")
    )
    from repro.core.schema.generalization import specialize

    specialize(extended.entity_class("Thing"), extended.entity_class("Interface"))
    from repro.core import SeedDatabase

    extended_db = SeedDatabase(extended.check(), "extended")
    extended_db.create_object("Interface", "OperatorConsole")  # works: data change

    handcoded = HandCodedSpecStore()
    try:
        handcoded.declare("interface", "OperatorConsole")
        handcoded_extensible = True
    except NotImplementedError:
        handcoded_extensible = False
    assert not handcoded_extensible, "hand-coded store requires tool changes"

    rows = [
        ("SEED-backed SPADES", f"{seed_seconds * 1000:.1f}", "yes", "schema change"),
        ("hand-coded store", f"{handcoded_seconds * 1000:.1f}", "no",
         "tool code change"),
    ]
    report(
        "C1",
        f"'considerably slower, but much more flexible' "
        f"(slowdown x{slowdown:.1f}, {vague} vague flows preserved vs forced)",
        series_table(("store", "load ms", "vague data", "model extension"), rows),
    )

    # keep a benchmark record of the SEED side for the harness table
    benchmark.pedantic(
        lambda: load_into_spades(SPEC, SpadesTool("record")), rounds=3, iterations=1
    )
