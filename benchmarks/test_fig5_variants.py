"""[F5] Figure 5: variants defined by means of patterns.

Regenerates the figure: a common part connected to pattern objects
PO1/PO2 by pattern relationships PR1/PR2; variants A and B inherit both
patterns and thereby provably share their relationships to the common
part. Benchmarks family construction and the uniformity guarantee, and
demonstrates the paper's claim that this "could not be assured with
ordinary relationships".
"""

from __future__ import annotations

from repro.core import SeedDatabase
from repro.core.variants import VariantFamily
from repro.spades import spades_schema

from conftest import report


def build_figure5():
    db = SeedDatabase(spades_schema(), "fig5")
    kernel = db.create_object("Module", "KernelModules")
    protocol = db.create_object("Module", "ProtocolModules")
    family = VariantFamily(db, "Configuration", variant_class="Action")
    family.add_shared_relationship(            # PO1 / PR1
        "AllocatedTo", {"module": kernel}, variant_role="action"
    )
    family.add_shared_relationship(            # PO2 / PR2
        "AllocatedTo", {"module": protocol}, variant_role="action"
    )
    for name, hardware in (("VariantA", "alpine"), ("VariantB", "desert")):
        variant = db.create_object("Action", name)
        variant.add_sub_object("Description", f"configuration for {hardware} hardware")
        family.add_variant(variant)
        driver = db.create_object("Module", f"{name}Drivers")
        db.relate("AllocatedTo", {"action": variant, "module": driver})
    return db, family


def test_fig5_family_construction(benchmark):
    db, family = benchmark(build_figure5)
    # both variants share relationships to the full common part
    assert family.check_uniformity() == []
    for variant in family.variants:
        shared = {
            str(m.name)
            for m in db.navigate(variant, "AllocatedTo", "module")
            if "Drivers" not in str(m.name)
        }
        assert shared == {"KernelModules", "ProtocolModules"}
    # the variant parts differ
    a_modules = {
        str(m.name)
        for m in db.navigate(db.get_object("VariantA"), "AllocatedTo", "module")
    }
    b_modules = {
        str(m.name)
        for m in db.navigate(db.get_object("VariantB"), "AllocatedTo", "module")
    }
    assert a_modules.symmetric_difference(b_modules) == {
        "VariantADrivers",
        "VariantBDrivers",
    }
    lines = [
        f"common part: KernelModules, ProtocolModules "
        f"(via {len(family.pattern_objects)} pattern objects)",
    ]
    for variant in family.variants:
        modules = sorted(
            str(m.name) for m in db.navigate(variant, "AllocatedTo", "module")
        )
        lines.append(f"{variant.simple_name}: {', '.join(modules)}")
    report("F5", "figure 5 variants family", "\n".join(lines))


def test_fig5_pattern_update_reaches_all_variants(benchmark):
    db, family = build_figure5()
    network = db.create_object("Module", "NetworkModules")

    def extend_common_part():
        return family.add_shared_relationship(
            "AllocatedTo", {"module": network}, variant_role="action"
        )

    benchmark.pedantic(extend_common_part, rounds=1, iterations=1)
    for variant in family.variants:
        modules = {
            str(m.name) for m in db.navigate(variant, "AllocatedTo", "module")
        }
        assert "NetworkModules" in modules
    assert family.check_uniformity() == []


def test_fig5_ordinary_relationships_cannot_assure_sharing(benchmark):
    """The no-pattern construction drifts: forgetting one variant when
    the common part grows leaves the family non-uniform, silently."""

    def drifting_family():
        db = SeedDatabase(spades_schema(), "drift")
        kernel = db.create_object("Module", "KernelModules")
        variants = []
        for name in ("VariantA", "VariantB"):
            variant = db.create_object("Action", name)
            variant.add_sub_object("Description", "x")
            db.relate("AllocatedTo", {"action": variant, "module": kernel})
            variants.append(variant)
        # the common part grows; the tool forgets VariantB
        network = db.create_object("Module", "NetworkModules")
        db.relate("AllocatedTo", {"action": variants[0], "module": network})
        shared_sets = [
            frozenset(
                str(m.name) for m in db.navigate(v, "AllocatedTo", "module")
            )
            for v in variants
        ]
        return shared_sets

    shared_sets = benchmark(drifting_family)
    assert shared_sets[0] != shared_sets[1]  # the drift the paper warns about


def test_fig5_uniformity_check_at_scale(benchmark):
    db = SeedDatabase(spades_schema(), "fig5scale")
    modules = [db.create_object("Module", f"Common{i}") for i in range(10)]
    family = VariantFamily(db, "Fleet", variant_class="Action")
    for module in modules:
        family.add_shared_relationship(
            "AllocatedTo", {"module": module}, variant_role="action"
        )
    for i in range(20):
        variant = db.create_object("Action", f"Variant{i}")
        variant.add_sub_object("Description", "x")
        family.add_variant(variant)

    problems = benchmark(family.check_uniformity)
    assert problems == []
