"""[C6] The two-level multi-user sketch (paper, "Open problems").

Exercises the client/server architecture the paper proposes: retrieval
against the central database, local copies for update with central
write locks, check-in as one server transaction, conflict detection,
and local+global versions. Benchmarks the check-out/update/check-in
cycle and the lock-conflict fast path.
"""

from __future__ import annotations

import pytest

from repro.core import LockError
from repro.multiuser import SeedServer
from repro.spades import spades_schema
from repro.workloads import SpecShape, generate_spec, load_into_spades
from repro.spades import SpadesTool

from conftest import report


def build_server() -> SeedServer:
    server = SeedServer(spades_schema())
    spec = generate_spec(
        SpecShape(actions=10, data=10, flows=15, vague_fraction=0.0), seed=606
    )
    tool = SpadesTool("central", db=server.master)
    load_into_spades(spec, tool)
    server.create_global_version()
    return server


def test_c6_checkout_update_checkin_cycle(benchmark):
    server = build_server()
    name = server.master.objects("Data", include_specials=False)[0].simple_name
    serial = [0]

    def cycle():
        serial[0] += 1
        client = server.connect(f"client{serial[0]}")
        local = client.check_out(name)
        local.get_object(name).add_sub_object("Note", f"edit {serial[0]}")
        client.check_in()
        server.disconnect(f"client{serial[0]}")

    benchmark(cycle)
    notes = server.master.get_object(name).sub_objects("Note")
    assert len(notes) >= 1


def test_c6_lock_conflict_detection(benchmark):
    server = build_server()
    name = server.master.objects("Data", include_specials=False)[0].simple_name
    alice = server.connect("alice")
    alice.check_out(name)
    bob = server.connect("bob")

    def conflicting_checkout():
        try:
            bob.check_out(name)
            return False
        except LockError:
            return True

    conflict_detected = benchmark(conflicting_checkout)
    assert conflict_detected
    assert not bob.has_copy


def test_c6_serialised_updates_compose(benchmark):
    server = build_server()
    names = [
        obj.simple_name
        for obj in server.master.objects("Data", include_specials=False)[:3]
    ]

    def three_clients_sequential():
        for position, name in enumerate(names):
            client = server.connect(f"seq{position}-{id(object())}")
            local = client.check_out(name)
            local.get_object(name).add_sub_object("Note", f"by {position}")
            client.check_in()
            server.disconnect(client.client_id)

    benchmark.pedantic(three_clients_sequential, rounds=3, iterations=1)
    for name in names:
        assert server.master.get_object(name).sub_objects("Note")
    assert len(server.locks) == 0
    report(
        "C6",
        "two-level multi-user sketch",
        "write locks taken at check-out; conflicting check-out fails "
        "fast; check-in applied as a single master transaction; locks "
        f"released after check-in (held now: {len(server.locks)})",
    )


def test_c6_global_and_local_versions(benchmark):
    server = build_server()
    name = server.master.objects("Data", include_specials=False)[0].simple_name

    def session_with_versions():
        client = server.connect(f"v{id(object())}")
        local = client.check_out(name)
        local.get_object(name).add_sub_object("Note", "draft")
        client.save_local_version()          # user-controlled local version
        local.get_object(name).sub_objects("Note")[0].set_value("final")
        client.check_in()
        server.disconnect(client.client_id)
        return server.create_global_version()  # server-controlled global

    version = benchmark.pedantic(session_with_versions, rounds=3, iterations=1)
    assert version in server.global_versions()
