"""Shared helpers for the benchmark harness.

Every module regenerates one figure or claim of the paper (the
experiment ids of DESIGN.md §2). Structural results are printed through
:func:`report` so `pytest benchmarks/ --benchmark-only -s` shows the
regenerated figure/series next to the timing table.
"""

from __future__ import annotations


def report(experiment_id: str, title: str, body: str) -> None:
    """Print one experiment's regenerated output, clearly delimited."""
    bar = "=" * 72
    print(f"\n{bar}\n[{experiment_id}] {title}\n{bar}\n{body}\n")


def series_table(header: tuple, rows: list[tuple]) -> str:
    """Render a small aligned table for printed series."""
    widths = [
        max(len(str(cell)) for cell in column)
        for column in zip(header, *rows)
    ]
    def fmt(row):
        return "  ".join(str(cell).rjust(width) for cell, width in zip(row, widths))

    lines = [fmt(header), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
