"""[F2] Figure 2: the sample SEED schema.

Regenerates the figure-2 schema (classes Data/Action with the dependent
Text/Body/Contents/Keywords/Selector tree, associations Read/Write with
their role cardinalities, and the ACYCLIC Contained association), then
asserts every declaration the figure shows and benchmarks schema
construction, validation, and DDL-style round-trips through the
serialiser.
"""

from __future__ import annotations

from repro.core import figure2_schema
from repro.core.storage import schema_from_dict, schema_to_dict

from conftest import report


def assert_figure2_facts(schema) -> None:
    # hierarchically structured class 'Data' with Text 0..16
    text = schema.entity_class("Data.Text")
    assert str(text.cardinality) == "0..16"
    assert schema.entity_class("Data.Text.Selector").value_sort.name == "STRING"
    assert schema.entity_class("Data.Text.Body.Contents").value_sort.name == "STRING"
    # Read: from Data [1..*], by Action [0..*]
    read = schema.association("Read")
    assert str(read.role("from").cardinality) == "1..*"
    assert str(read.role("by").cardinality) == "0..*"
    assert read.role("from").target.name == "Data"
    # Write mirrors Read on the writing side
    write = schema.association("Write")
    assert str(write.role("to").cardinality) == "1..*"
    # Contained imposes a tree structure: ACYCLIC + 0..1 for the
    # contained role
    contained = schema.association("Contained")
    assert contained.acyclic
    assert str(contained.role("contained").cardinality) == "0..1"


def render_schema(schema) -> str:
    lines = []
    for entity_class in schema.all_classes():
        indent = "  " * (entity_class.full_name.count("."))
        sort = f" : {entity_class.value_sort.name}" if entity_class.value_sort else ""
        card = f" [{entity_class.cardinality}]" if entity_class.cardinality else ""
        lines.append(f"{indent}{entity_class.name}{sort}{card}")
    for association in schema.associations:
        lines.append(association.describe())
    return "\n".join(lines)


def test_fig2_schema_construction(benchmark):
    schema = benchmark(figure2_schema)
    assert_figure2_facts(schema)
    assert schema.validate() == []
    report("F2", "figure 2 schema regenerated", render_schema(schema))


def test_fig2_schema_validation(benchmark):
    schema = figure2_schema()
    problems = benchmark(schema.validate)
    assert problems == []


def test_fig2_schema_serialisation_roundtrip(benchmark):
    schema = figure2_schema()

    def roundtrip():
        return schema_from_dict(schema_to_dict(schema))

    rebuilt = benchmark(roundtrip)
    assert_figure2_facts(rebuilt)
