"""[C3] "Any update of a pattern automatically propagates to all
inheritors of that pattern."

The paper's deadline example, measured: N procedure objects share a
deadline. With patterns, an update is one write and consistency of the
shared value holds by construction; with manual copies (the only option
in a pattern-less store) an update is N writes, and a missed copy
silently diverges.
"""

from __future__ import annotations

from repro.baselines import ManualCopySharing
from repro.core import SeedDatabase
from repro.spades import spades_schema

from conftest import report, series_table

MEMBERS = 50


def build_pattern_family(members: int):
    db = SeedDatabase(spades_schema(), "patterns")
    template = db.create_object("Action", "DeadlineTemplate", pattern=True)
    deadline = db.create_sub_object(template, "Deadline", "1986-06-01")
    inheritors = []
    for i in range(members):
        procedure = db.create_object("Action", f"Procedure{i}")
        procedure.add_sub_object("Description", f"procedure {i}")
        db.inherit(template, procedure)
        inheritors.append(procedure)
    return db, deadline, inheritors


def build_manual_family(members: int):
    db = SeedDatabase(spades_schema(), "manual")
    sharing = ManualCopySharing(db, "Deadline")
    for i in range(members):
        procedure = db.create_object("Action", f"Procedure{i}")
        procedure.add_sub_object("Description", f"procedure {i}")
        sharing.add_member(procedure, "1986-06-01")
    return db, sharing


def test_c3_pattern_update_is_one_write(benchmark):
    db, deadline, inheritors = build_pattern_family(MEMBERS)
    dates = ["1986-07-01", "1986-08-01"]
    counter = [0]

    def update_pattern():
        counter[0] += 1
        deadline.set_value(dates[counter[0] % 2])

    benchmark(update_pattern)
    # propagation is automatic and total
    import datetime

    expected = datetime.date.fromisoformat(dates[counter[0] % 2])
    for procedure in inheritors:
        values = [d.value for d in procedure.effective_sub_objects("Deadline")]
        assert values == [expected]


def test_c3_manual_update_is_n_writes(benchmark):
    db, sharing = build_manual_family(MEMBERS)
    dates = ["1986-07-01", "1986-08-01"]
    counter = [0]

    def update_all_copies():
        counter[0] += 1
        return sharing.update_all(dates[counter[0] % 2])

    updated = benchmark(update_all_copies)
    assert updated == MEMBERS


def test_c3_divergence_impossible_with_patterns(benchmark):
    """The failure mode manual copying allows and patterns rule out."""
    db, sharing = build_manual_family(12)
    sharing.update_some("1986-09-01", skip_every=4)
    assert not sharing.is_consistent()
    manual_divergence = sharing.divergence()

    pattern_db, deadline, inheritors = build_pattern_family(12)
    deadline.set_value("1986-09-01")
    values = {
        str(d.value)
        for procedure in inheritors
        for d in procedure.effective_sub_objects("Deadline")
    }
    assert len(values) == 1  # patterns cannot diverge

    rows = [
        ("patterns", 1, 1, "impossible (single source)"),
        ("manual copies", 12, 12, f"{manual_divergence} distinct values "
                                  "after one missed update"),
    ]
    report(
        "C3",
        "shared-deadline maintenance (12 members)",
        series_table(("scheme", "writes/update", "copies", "divergence risk"), rows),
    )

    def uniformity_check():
        return {
            str(d.value)
            for procedure in inheritors
            for d in procedure.effective_sub_objects("Deadline")
        }

    benchmark(uniformity_check)


def test_c3_write_cost_sweep(benchmark):
    """The update-cost gap grows linearly with family size."""
    import time

    rows = []
    for members in (10, 40, 160):
        __, deadline, __ = build_pattern_family(members)
        start = time.perf_counter()
        deadline.set_value("1986-10-01")
        pattern_cost = time.perf_counter() - start

        __, sharing = build_manual_family(members)
        start = time.perf_counter()
        sharing.update_all("1986-10-01")
        manual_cost = time.perf_counter() - start
        rows.append(
            (
                members,
                f"{pattern_cost * 1e6:.0f}",
                f"{manual_cost * 1e6:.0f}",
                f"x{manual_cost / pattern_cost:.1f}",
            )
        )
    report(
        "C3",
        "update cost vs family size (µs, one update of the shared value)",
        series_table(("members", "pattern µs", "manual µs", "ratio"), rows),
    )
    db, deadline, __ = build_pattern_family(10)
    benchmark(lambda: deadline.set_value("1986-11-11"))
