"""[F1] Figure 1: the sample object-relationship structure.

Regenerates the paper's figure 1 through the public API: independent
object 'Alarms' (Data), relationship 'Read' relating 'AlarmHandler' and
'Alarms' in roles 'by' and 'from', the dependent-object tree
Alarms.Text -> Body/Selector, and the indexed Keywords[0]/Keywords[1]
leaves — then asserts every structural fact the figure states, and
benchmarks the construction and retrieval paths.
"""

from __future__ import annotations

import pytest

from repro.core import SeedDatabase, figure2_schema
from repro.spades.reports import render_database_figure

from conftest import report


def build_figure1(db: SeedDatabase) -> None:
    alarms = db.create_object("Data", "Alarms")
    handler = db.create_object("Action", "AlarmHandler")
    handler.add_sub_object("Description", "Handles alarms")
    db.relate("Read", {"from": alarms, "by": handler})
    text = alarms.add_sub_object("Text")
    body = text.add_sub_object("Body")
    body.add_sub_object(
        "Contents", "Alarms are represented in an alarm display matrix"
    )
    body.add_sub_object("Keywords", "Alarmhandling")
    body.add_sub_object("Keywords", "Display")
    text.add_sub_object("Selector", "Representation")


def assert_figure1_facts(db: SeedDatabase) -> None:
    # (1) 'Alarms' is an independent object with name 'Alarms'
    alarms = db.get_object("Alarms")
    assert alarms.is_independent and alarms.class_name == "Data"
    # (2) the 'Read' relationship relates AlarmHandler/Alarms as by/from
    read = db.relationships("Read")[0]
    assert read.bound("from") is alarms
    assert read.bound("by").simple_name == "AlarmHandler"
    # (3) dependent object 'Alarms.Text' composed of Body and Selector,
    #     Selector holds "Representation"
    selector = db.get_object("Alarms.Text.Selector")
    assert selector.value == "Representation"
    # (4) 'Alarms.Text.Body.Keywords[1]' holds "Display"
    keyword = db.get_object("Alarms.Text.Body.Keywords[1]")
    assert keyword.value == "Display"
    assert str(keyword.name) == "Alarms.Text[0].Body.Keywords[1]"


def test_fig1_structure_construction(benchmark):
    def run():
        db = SeedDatabase(figure2_schema(), "fig1")
        build_figure1(db)
        return db

    db = benchmark(run)
    assert_figure1_facts(db)
    assert db.check_consistency() == []
    report("F1", "figure 1 regenerated from the public API",
           render_database_figure(db))


def test_fig1_retrieval_by_name(benchmark):
    db = SeedDatabase(figure2_schema(), "fig1")
    build_figure1(db)

    def lookup():
        return (
            db.get_object("Alarms.Text.Body.Keywords[1]").value,
            db.get_object("Alarms.Text.Selector").value,
        )

    display, representation = benchmark(lookup)
    assert display == "Display"
    assert representation == "Representation"


def test_fig1_navigation(benchmark):
    db = SeedDatabase(figure2_schema(), "fig1")
    build_figure1(db)
    handler = db.get_object("AlarmHandler")

    def navigate():
        return db.navigate(handler, "Read", "from")

    results = benchmark(navigate)
    assert [str(o.name) for o in results] == ["Alarms"]
