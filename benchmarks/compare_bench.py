"""CI benchmark-trend gate: diff a fresh run against committed baselines.

Loads every ``BENCH_PR<n>.json`` committed at the repository root,
takes — per (size, section) — the *newest* baseline that measured it,
and compares the fresh run's speedup against it. Speedups are ratios of
medians measured in the same process, so they transfer across machines
where raw seconds do not; a fresh speedup more than ``--tolerance``
(default 25%) below the baseline's fails the gate.

Only *gated* sections participate: result sub-dicts carrying a numeric
``"speedup"`` field (extent/prefix/participation scans, acyclic
commits, the planner multi-join, the PR-3 version-walk and
incremental-completeness sections, the PR-4 bulk-ingest and
cold-checkout sections, and the PR-5 multijoin-drift section). *Sizes*
the fresh run did not measure are skipped with a note — a smoke run at
size 1000 is gated against the baselines' size-1000 entries only. A
gated *section* that a baseline measured at a fresh-run size but the
fresh run dropped **fails the gate**: a silently-vanished benchmark
would otherwise pass forever. Intentional removals go through
``--allow-missing SECTION`` (repeatable), which records the waiver in
the output.

The check also runs in reverse: a gated section *name* that appears in
**no** baseline file **fails the gate** unless waived with
``--allow-new SECTION`` — an accidental section rename would otherwise
sail through as "new (no baseline yet)" while its history silently
stops being compared. A PR introducing a real section passes the
waiver in CI until its ``BENCH_PR<n>.json`` lands; known sections
measured at a previously-unmeasured *size* (e.g. nightly growing a
tier) stay informational, not failures.

Usage (CI wires this after the harness smoke run)::

    python benchmarks/compare_bench.py bench_smoke.json
    python benchmarks/compare_bench.py bench_smoke.json --tolerance 0.4
    python benchmarks/compare_bench.py bench_smoke.json \
        --allow-missing retired_section --allow-new fresh_section

Exit codes: 0 trend ok, 1 regression(s), dropped section(s), or
undeclared new section(s), 2 usage/baseline problems.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

BASELINE_PATTERN = re.compile(r"^BENCH_PR(\d+)\.json$")


def discover_baselines(root: Path) -> list[tuple[int, Path]]:
    """Committed ``BENCH_PR<n>.json`` files, oldest first."""
    found = []
    for path in root.glob("BENCH_PR*.json"):
        match = BASELINE_PATTERN.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def gated_sections(results: dict) -> dict[tuple[str, str], float]:
    """(size, section) -> speedup for every gated section of one report."""
    sections: dict[tuple[str, str], float] = {}
    for size, data in results.items():
        for section, value in data.items():
            if (
                isinstance(value, dict)
                and isinstance(value.get("speedup"), (int, float))
            ):
                sections[(size, section)] = float(value["speedup"])
    return sections


def collect_baseline(
    baselines: list[tuple[int, Path]],
) -> dict[tuple[str, str], tuple[float, str]]:
    """(size, section) -> (speedup, source file), newest baseline wins."""
    reference: dict[tuple[str, str], tuple[float, str]] = {}
    for __, path in baselines:  # ascending: later files overwrite
        report = json.loads(path.read_text())
        for key, speedup in gated_sections(report.get("results", {})).items():
            reference[key] = (speedup, path.name)
    return reference


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="JSON report of the fresh run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression (default: 0.25)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the committed BENCH_PR<n>.json files",
    )
    parser.add_argument(
        "--allow-missing",
        action="append",
        default=[],
        metavar="SECTION",
        help="gated baseline section intentionally dropped from the "
        "harness; missing it in the fresh run is then not a failure "
        "(repeatable)",
    )
    parser.add_argument(
        "--allow-new",
        action="append",
        default=[],
        metavar="SECTION",
        help="gated section intentionally introduced by this PR; its "
        "absence from every committed baseline is then not a failure "
        "(repeatable)",
    )
    args = parser.parse_args(argv)

    if not args.fresh.exists():
        print(f"error: fresh report {args.fresh} does not exist")
        return 2
    baselines = discover_baselines(args.baseline_dir)
    if not baselines:
        print(f"error: no BENCH_PR<n>.json baselines in {args.baseline_dir}")
        return 2
    reference = collect_baseline(baselines)
    fresh = gated_sections(
        json.loads(args.fresh.read_text()).get("results", {})
    )
    if not fresh:
        print(f"error: {args.fresh} contains no gated sections")
        return 2

    floor = 1.0 - args.tolerance
    regressions: list[str] = []
    # a section *name* no baseline has ever measured is suspect (rename
    # or typo) unless this PR declares it via --allow-new; a known
    # section at a previously-unmeasured size is ordinary tier growth
    known_sections = {section for __, section in reference}
    allowed_new = set(args.allow_new)
    unexpected_new: list[str] = []
    compared = 0
    for (size, section), fresh_speedup in sorted(fresh.items()):
        baseline = reference.get((size, section))
        if baseline is None:
            if section in known_sections:
                print(
                    f"  new-size {section}@{size}: x{fresh_speedup} "
                    "(known section, no baseline at this size)"
                )
            elif section in allowed_new:
                print(
                    f"  allowed  {section}@{size}: x{fresh_speedup} "
                    "new section via --allow-new"
                )
            else:
                print(
                    f"  NEW      {section}@{size}: x{fresh_speedup} "
                    "appears in no committed baseline"
                )
                unexpected_new.append(
                    f"{section}@{size}: gated section appears in no "
                    "committed baseline (pass --allow-new "
                    f"{section} if this PR introduces it)"
                )
            continue
        baseline_speedup, source = baseline
        compared += 1
        ratio = (
            fresh_speedup / baseline_speedup if baseline_speedup else float("inf")
        )
        status = "ok" if ratio >= floor else "REGRESSED"
        print(
            f"  {status:9}{section}@{size}: x{fresh_speedup} vs "
            f"x{baseline_speedup} ({source}), ratio {ratio:.2f}"
        )
        if ratio < floor:
            regressions.append(
                f"{section}@{size}: x{fresh_speedup} is more than "
                f"{args.tolerance:.0%} below baseline x{baseline_speedup} "
                f"({source})"
            )
    # baseline sections the fresh run dropped: only sizes the fresh run
    # actually measured count (a size-1000 smoke run is not penalized
    # for the baselines' 10k/50k entries), and --allow-missing waives
    # intentional removals explicitly
    fresh_sizes = {size for size, __ in fresh}
    allowed = set(args.allow_missing)
    dropped: list[str] = []
    for (size, section), (baseline_speedup, source) in sorted(reference.items()):
        if size not in fresh_sizes or (size, section) in fresh:
            continue
        if section in allowed:
            print(
                f"  allowed  {section}@{size}: baseline x{baseline_speedup} "
                f"({source}) dropped via --allow-missing"
            )
            continue
        print(
            f"  MISSING  {section}@{size}: baseline x{baseline_speedup} "
            f"({source}) has no fresh measurement"
        )
        dropped.append(
            f"{section}@{size}: gated baseline x{baseline_speedup} ({source}) "
            "vanished from the fresh run (pass --allow-missing "
            f"{section} if the removal is intentional)"
        )
    if not compared:
        print("error: fresh run shares no gated (size, section) with baselines")
        return 2
    if regressions or dropped or unexpected_new:
        print(
            f"\ntrend gate FAILED ({len(regressions)} regression(s), "
            f"{len(dropped)} dropped section(s), "
            f"{len(unexpected_new)} undeclared new section(s)):"
        )
        for line in regressions + dropped + unexpected_new:
            print(f"  {line}")
        return 1
    print(
        f"\ntrend gate ok: {compared} gated sections within "
        f"{args.tolerance:.0%} of the committed baselines"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
