"""[F3] Figure 3 + prose: vague data via generalization, staged refinement.

Regenerates the schema with generalizations (Thing, Access) and replays
the paper's refinement narrative —

    "There is a thing with name 'Alarms'"
 -> "a data object which is accessed by action 'Sensor'"
 -> "'Alarms' is an output" (Access specialized to Write)
 -> "written twice by 'Sensor', writing repeated in case of error"

— asserting the stored state after every stage, then benchmarks the
refinement pipeline at workload scale (many vague flows resolved).
"""

from __future__ import annotations

from repro.core import SeedDatabase, figure3_schema
from repro.spades import SpadesTool
from repro.workloads import (
    SpecShape,
    generate_spec,
    ground_truth_directions,
    load_into_spades,
    refine_all_vague,
)

from conftest import report


def refinement_story() -> tuple[SeedDatabase, list[str]]:
    db = SeedDatabase(figure3_schema(), "fig3")
    stages: list[str] = []

    alarms = db.create_object("Thing", "Alarms")
    stages.append(f"stage 1: {alarms.name} is a {alarms.class_name}")

    sensor = db.create_object("Action", "Sensor")
    sensor.add_sub_object("Description", "reads hardware sensors")
    alarms.reclassify("Data")
    access = db.relate("Access", data=alarms, by=sensor)
    stages.append(
        f"stage 2: {alarms.name} is a {alarms.class_name}, "
        f"{access.association_name} by Sensor"
    )

    with db.transaction():
        alarms.reclassify("OutputData")
        access.reclassify("Write")
    stages.append(
        f"stage 3: {alarms.name} is an {alarms.class_name}, "
        f"{access.association_name} by Sensor"
    )

    access.set_attribute("NumberOfWrites", 2)
    access.set_attribute("ErrorHandling", "repeat")
    stages.append(
        f"stage 4: written {access.attribute('NumberOfWrites')} times, "
        f"on error: {access.attribute('ErrorHandling')}"
    )
    return db, stages


def test_fig3_refinement_story(benchmark):
    db, stages = benchmark(refinement_story)
    alarms = db.get_object("Alarms")
    assert alarms.class_name == "OutputData"
    write = db.relationships("Write")[0]
    assert write.attribute("NumberOfWrites") == 2
    assert write.attribute("ErrorHandling") == "repeat"
    assert db.check_consistency() == []
    # the completeness machinery confirms the refinement closed the
    # covering gaps of stages 1-2
    assert not db.check_completeness().by_kind("covering")
    report("F3", "paper's refinement narrative replayed", "\n".join(stages))


def test_fig3_vague_storage_admitted(benchmark):
    """The generalized categories store what figure 2 must reject."""

    def enter_vague():
        db = SeedDatabase(figure3_schema(), "vague")
        thing = db.create_object("Thing", "Alarms")
        handler = db.create_object("Action", "AlarmHandler")
        handler.add_sub_object("Description", "handles")
        thing.reclassify("Data")
        return db.relate("Access", data=thing, by=handler)

    rel = benchmark(enter_vague)
    assert rel.association_name == "Access"


def test_fig3_refinement_at_scale(benchmark):
    """Resolve every vague flow of a generated workload (bulk
    re-classification of relationships)."""
    spec = generate_spec(
        SpecShape(actions=20, data=20, flows=40, vague_fraction=0.5), seed=33
    )
    truth = ground_truth_directions(spec, 33)

    def run():
        tool = load_into_spades(spec, SpadesTool("scale"))
        return refine_all_vague(tool, truth), tool

    refined, tool = benchmark(run)
    assert refined == len(truth) > 0
    assert tool.db.relationships("Access", include_specials=False) == []
    assert tool.db.check_consistency() == []
    report(
        "F3",
        "bulk refinement",
        f"{refined} vague Access flows specialized to Read/Write; "
        f"0 vague flows remain; full consistency check clean",
    )
