"""[C5] The motivating rejections: strict stores reject what SEED admits.

The paper's two examples, executed against real code:

(1) "We cannot store the information that there is a dataflow from
    'AlarmHandler' to 'Alarms' unless we precisely know whether it is a
    read or a write" — the figure-2 schema has no category for it; the
    figure-3 schema's generalized ``Access`` stores it.
(2) "We cannot enter 'Alarms' as an object of class 'Data' without also
    entering a 'Read'- and a 'Write'-relationship" — the strict store
    (minimum cardinalities enforced on every update) rejects the lone
    object; SEED admits it and reports the gaps via completeness
    checking instead.
"""

from __future__ import annotations

import pytest

from repro.baselines import StrictStore
from repro.core import ConsistencyError, SeedDatabase, figure2_schema, figure3_schema

from conftest import report


def test_c5_strict_store_rejects_lone_data_object(benchmark):
    def attempt():
        store = StrictStore(figure2_schema())
        try:
            store.create_object("Data", "Alarms")
            return False
        except ConsistencyError:
            return store.find_object("Alarms") is None

    rejected_and_rolled_back = benchmark(attempt)
    assert rejected_and_rolled_back


def test_c5_seed_admits_and_reports(benchmark):
    def attempt():
        db = SeedDatabase(figure2_schema(), "c5")
        db.create_object("Data", "Alarms")
        return db, db.check_completeness()

    db, gaps = benchmark(attempt)
    assert db.find_object("Alarms") is not None  # admitted
    assert db.check_consistency() == []          # and consistent
    missing = {gap.element for gap in gaps.by_kind("relationship-minimum")}
    assert missing == {"Read", "Write"}          # gaps reported, not refused
    report(
        "C5",
        "example (2): lone 'Alarms' object",
        "strict store: rejected (rolled back)\n"
        f"SEED: admitted; completeness report: {gaps.summary()}",
    )


def test_c5_vague_dataflow_only_with_generalization(benchmark):
    # figure 2: no category for the vague dataflow
    fig2 = figure2_schema()
    assert not fig2.has_association("Access")

    # figure 3: the Access category stores it
    def vague_flow():
        db = SeedDatabase(figure3_schema(), "c5b")
        alarms = db.create_object("Data", "Alarms")
        handler = db.create_object("Action", "AlarmHandler")
        handler.add_sub_object("Description", "handles")
        return db.relate("Access", data=alarms, by=handler)

    rel = benchmark(vague_flow)
    assert rel.association_name == "Access"
    report(
        "C5",
        "example (1): dataflow of unknown direction",
        "figure-2 schema: no admissible category (cannot be stored)\n"
        "figure-3 schema: stored as Access, refinable to Read/Write later",
    )


def test_c5_strict_entry_order_dilemma(benchmark):
    """Under strict checking even the 'right' order fails item by item —
    only an all-at-once compound works, which is exactly the paper's
    point about evolutionary development."""
    store = StrictStore(figure2_schema())
    for class_name, name in (("Data", "Alarms"), ("Action", "Handler")):
        with pytest.raises(ConsistencyError):
            store.create_object(class_name, name)

    def compound_entry():
        fresh = StrictStore(figure2_schema())
        with fresh.compound():
            alarms = fresh.create_object("Data", "Alarms")
            handler = fresh.create_object("Action", "Handler")
            fresh.create_sub_object(handler, "Description", "handles")
            fresh.relate("Read", {"from": alarms, "by": handler})
            fresh.relate("Write", {"to": alarms, "by": handler})
        return fresh

    fresh = benchmark(compound_entry)
    assert fresh.find_object("Alarms") is not None
