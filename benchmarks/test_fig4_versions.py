"""[F4] Figure 4: versions, views, and alternatives.

Regenerates figures 4a/4b/4c: the AlarmHandler description evolving
through versions 1.0 and 2.0 plus a current state; the view rule ("the
objects and relationships having the greatest version number that is
less than or equal to n, provided they are not marked as deleted"); and
an alternative branched off version 1.0. Benchmarks snapshot creation,
view materialisation, and history retrieval.
"""

from __future__ import annotations

from repro.core import SeedDatabase, figure2_schema
from repro.spades.reports import render_version_history

from conftest import report


def build_figure4(db: SeedDatabase) -> None:
    alarms = db.create_object("Data", "Alarms")
    handler = db.create_object("Action", "AlarmHandler")
    handler.add_sub_object("Description", "Handles alarms")
    db.relate("Read", {"from": alarms, "by": handler})
    db.create_version("1.0")
    db.get_object("AlarmHandler.Description").set_value(
        "Handles alarms derived from ProcessData"
    )
    db.create_version("2.0")
    db.get_object("AlarmHandler.Description").set_value(
        "Generates alarms from process data, triggers Operator Alert"
    )


def test_fig4_views(benchmark):
    db = SeedDatabase(figure2_schema(), "fig4")
    build_figure4(db)

    def views():
        return (
            db.version_view("1.0").get("AlarmHandler.Description").value,
            db.version_view("2.0").get("AlarmHandler.Description").value,
            db.get_object("AlarmHandler.Description").value,
        )

    v1, v2, current = benchmark(views)
    # figure 4c
    assert v1 == "Handles alarms"
    # intermediate version
    assert v2 == "Handles alarms derived from ProcessData"
    # figure 4b (current)
    assert current == "Generates alarms from process data, triggers Operator Alert"
    # delta storage: version 2.0 stored exactly one changed item
    assert db.versions.delta_size("2.0") == 1
    report(
        "F4",
        "figure 4a version cluster of AlarmHandler",
        render_version_history(db, "AlarmHandler"),
    )


def test_fig4_alternative_branch(benchmark):
    def run():
        db = SeedDatabase(figure2_schema(), "fig4alt")
        build_figure4(db)
        db.create_version("3.0")
        db.select_version("1.0")
        db.get_object("AlarmHandler.Description").set_value("Alternative handling")
        alternative = db.create_version()
        return db, alternative

    db, alternative = benchmark(run)
    assert str(alternative) == "1.0.1"
    assert (
        db.version_view("1.0.1").get("AlarmHandler.Description").value
        == "Alternative handling"
    )
    assert (
        db.version_view("3.0").get("AlarmHandler.Description").value
        == "Generates alarms from process data, triggers Operator Alert"
    )
    report("F4", "alternatives: classification tree reflects history",
           db.versions.tree.render())


def test_fig4_history_retrieval(benchmark):
    db = SeedDatabase(figure2_schema(), "fig4hist")
    build_figure4(db)
    db.create_version("3.0")
    oid = db.get_object("AlarmHandler.Description").oid

    def history():
        # "find all versions of object 'AlarmHandler' beginning with 2.0"
        return db.history.versions_of_item(("o", oid), beginning_with="2.0")

    entries = benchmark(history)
    assert [str(e.version) for e in entries] == ["2.0", "3.0"]


def test_fig4_snapshot_cost_scales_with_change(benchmark):
    """Creating a version costs O(changed items), not O(database)."""
    db = SeedDatabase(figure2_schema(), "fig4cost")
    handler = db.create_object("Action", "Handler")
    handler.add_sub_object("Description", "x")
    for i in range(300):
        data = db.create_object("Data", f"D{i}")
        db.relate("Read", {"from": data, "by": handler})
    db.create_version()
    target = db.get_object("D0")

    def one_change_snapshot():
        text = target.find_sub_object("Text")
        if text is None:
            target.add_sub_object("Text")
        else:
            db.delete(text)
        return db.create_version()

    version = benchmark(one_change_snapshot)
    assert db.versions.delta_size(version) <= 3
