#!/usr/bin/env python
"""Quickstart: the SEED DBMS in five minutes.

Walks through the core concepts on the paper's own running example:
define a schema with generalization hierarchies, enter vague
information, refine it, check completeness, snapshot versions, and
explore an alternative.

Run:  python examples/quickstart.py
"""

from repro import SchemaBuilder, SeedDatabase


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Define a schema (figure 3 of the paper, abbreviated)
    # ------------------------------------------------------------------
    builder = SchemaBuilder("quickstart")
    builder.entity_class("Thing", doc="most general category")
    builder.entity_class("Data", specializes="Thing")
    builder.entity_class("OutputData", specializes="Data")
    builder.entity_class("Action", specializes="Thing")
    builder.dependent("Action", "Description", "1..1", sort="STRING")
    builder.association(
        "Access", ("data", "Data", "1..*"), ("by", "Action", "1..*"),
        doc="some dataflow; direction unknown",
    )
    builder.association(
        "Read", ("from", "Data", "1..*"), ("by", "Action", "0..*"),
        specializes="Access",
    )
    builder.association(
        "Write", ("to", "OutputData", "1..*"), ("by", "Action", "0..*"),
        specializes="Access",
    )
    builder.attribute("Write", "NumberOfWrites", "INTEGER")
    builder.covering("Thing")      # every Thing must eventually be refined
    builder.covering("Access")     # every Access must become Read or Write
    schema = builder.build()

    db = SeedDatabase(schema, "quickstart")

    # ------------------------------------------------------------------
    # 2. Enter vague information — a conventional DBMS would refuse this
    # ------------------------------------------------------------------
    alarms = db.create_object("Thing", "Alarms")
    print("stored:", alarms, "- as vague as it gets")

    # consistency is checked on EVERY update; completeness only on demand
    report = db.check_completeness()
    print("completeness:", report.summary())

    # ------------------------------------------------------------------
    # 3. Refine as knowledge firms up (the paper's narrative)
    # ------------------------------------------------------------------
    sensor = db.create_object("Action", "Sensor")
    sensor.add_sub_object("Description", "reads hardware sensors")
    alarms.reclassify("Data")
    flow = db.relate("Access", data=alarms, by=sensor)
    print("refined: Alarms is Data, accessed by Sensor (direction unknown)")

    # 'Alarms' turns out to be an output -> both moves in one transaction
    with db.transaction():
        alarms.reclassify("OutputData")
        flow.reclassify("Write")
    flow.set_attribute("NumberOfWrites", 2)
    print("refined: Alarms is", alarms.class_name, "written",
          flow.attribute("NumberOfWrites"), "times by Sensor")

    print("completeness now:", db.check_completeness().summary())

    # ------------------------------------------------------------------
    # 4. Versions: snapshot, change, look back
    # ------------------------------------------------------------------
    v1 = db.create_version()
    db.get_object("Sensor.Description").set_value(
        "polls hardware sensors every 50 ms"
    )
    v2 = db.create_version()
    print(f"version {v1}:",
          db.version_view(v1).get("Sensor.Description").value)
    print(f"version {v2}:",
          db.version_view(v2).get("Sensor.Description").value)

    # ------------------------------------------------------------------
    # 5. Alternatives: rebase on a historical version
    # ------------------------------------------------------------------
    db.select_version(v1)
    db.get_object("Sensor.Description").set_value(
        "event-driven sensor acquisition"
    )
    alternative = db.create_version()
    print(f"alternative {alternative} branched off {v1}:")
    print(db.versions.tree.render())


if __name__ == "__main__":
    main()
