#!/usr/bin/env python
"""Persistence and the ER-algebra query extension.

Builds a specification, saves it through the journaled storage engine,
reloads it in a "second process", and answers analysis questions with
the entity-relationship algebra (the paper's prototype stopped at
retrieval by name; the algebra is the extension its related-work section
points to).

Run:  python examples/persistent_queries.py
"""

import tempfile
from pathlib import Path

from repro.core import SchemaBuilder
from repro.core.query import Retrieval, extent, relationship_relation
from repro.core.query.predicates import participates_in
from repro.core.storage import JournaledDatabase, load_database, save_database
from repro.spades import SpadesTool, parse_spec, spades_schema

SPEC = """
data ProcessData input
data Alarms output
data AuditLog output
action Sensor "reads hardware sensors"
action AlarmHandler "handles alarms"
action Auditor "writes the audit trail"
read Sensor <- ProcessData
write Sensor -> ProcessData
read AlarmHandler <- ProcessData
write AlarmHandler -> Alarms x2 repeat
read Auditor <- Alarms
write Auditor -> AuditLog
read AlarmHandler <- AuditLog
contain AlarmHandler (Sensor)
"""


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="seed-example-"))
    path = workdir / "spec.seed"

    # ------------------------------------------------------------------
    # process 1: author the specification and persist it
    # ------------------------------------------------------------------
    tool = parse_spec(SPEC, SpadesTool("persisted"))
    tool.db.create_version()
    size = save_database(tool.db, path)
    print(f"saved {tool.db.statistics()['objects']} objects "
          f"({size} bytes) to {path.name}")

    # ------------------------------------------------------------------
    # process 2: reload and analyse
    # ------------------------------------------------------------------
    db = load_database(path)
    print("reloaded:", db)

    retrieval = Retrieval(db)
    print("\nwriters (simple retrieval):",
          [o.simple_name for o in retrieval.instances(
              "Action", participates_in("Write", "by"))])

    # -- ER algebra: who reads what somebody else writes? --------------
    reads = relationship_relation(db, "Read").rename(**{"from": "data", "by": "reader"})
    writes = relationship_relation(db, "Write").rename(to="data", by="writer")
    handoffs = reads.join(writes).select(
        lambda row: row["reader"] is not row["writer"]
    )
    print("\ndata handoffs (reader <- data <- writer):")
    for row in handoffs:
        print(f"  {row['reader'].simple_name} <- "
              f"{row['data'].simple_name} <- {row['writer'].simple_name}")

    # -- attribute columns ----------------------------------------------
    detailed = relationship_relation(
        db, "Write", with_attributes=["NumberOfWrites", "ErrorHandling"]
    )
    print("\nwrite details:")
    for row in detailed:
        print(f"  {row['by'].simple_name} -> {row['to'].simple_name}: "
              f"times={row['NumberOfWrites']}, on-error={row['ErrorHandling']}")

    # -- set operations ---------------------------------------------------
    readers = reads.project("reader").rename(reader="action")
    writers = writes.project("writer").rename(writer="action")
    read_only = readers.difference(writers)
    print("\nactions that only read:",
          [o.simple_name for o in read_only.distinct_objects("action")])

    # ------------------------------------------------------------------
    # journaled mode: every committed mutation survives a crash
    # ------------------------------------------------------------------
    journal_path = workdir / "journal.seed"
    journal = JournaledDatabase.open(journal_path, schema=spades_schema())
    journal.db.create_object("Module", "ReportGenerator")
    journal.checkpoint()
    # direct mutations are write-ahead durable the moment they commit:
    # the journal appends a txn delta, no checkpoint call needed —
    # kill -9 here and the next open still has the Archiver
    journal.db.create_object("Module", "Archiver")
    with journal.db.transaction():  # multi-step commits are one delta
        journal.db.create_object("Module", "Indexer")
        journal.db.create_object("Module", "Notifier")
    print(f"\njournal: {journal.checkpoints()} checkpoint(s) + "
          f"{journal.txn_deltas()} txn delta(s), "
          f"{journal.compact()} bytes after compaction")
    reopened = JournaledDatabase.open(journal_path)  # the "crash"
    print("recovered modules:",
          sorted(m.simple_name for m in reopened.db.objects("Module")))

    # ------------------------------------------------------------------
    # every mutation is a journaled delta: even a schema migration
    # survives a crash with zero checkpoint calls — the migration
    # appends one write-ahead "schema" record through the same change
    # seam the txn deltas use, and replay re-applies it in file order
    # ------------------------------------------------------------------
    evolve_path = workdir / "evolving.seed"
    v1 = SchemaBuilder("evolving").entity_class("Module", sort="STRING").build()
    evolving = JournaledDatabase.open(evolve_path, schema=v1, name="evolving")
    evolving.db.create_object("Module", "Core")
    v2 = (
        SchemaBuilder("evolving")
        .entity_class("Module", sort="STRING")
        .entity_class("Interface", sort="STRING")
        .build()
    )
    evolving.db.migrate_schema(v2)  # one "schema" delta, no checkpoint
    evolving.db.create_object("Interface", "CoreApi")  # only legal in v2
    recovered = JournaledDatabase.open(evolve_path)  # the "crash"
    assert recovered.checkpoints() == 1  # just the initial empty image
    print(f"\nafter migration crash: schema knows "
          f"{recovered.db.schema.entity_class('Interface').name!r}, "
          f"{recovered.recovery.applied_change_deltas} change delta(s) "
          "replayed, zero checkpoints written")
    print("recovered items:",
          sorted(o.simple_name for o in recovered.db.objects()))


if __name__ == "__main__":
    main()
