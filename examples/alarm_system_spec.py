#!/usr/bin/env python
"""A full specification session with the SPADES miniature.

Models the paper's application domain end to end: an alarm-handling
subsystem of a process-control system is specified evolutionarily —
vague statements first, structure and precision later — with session
snapshots, a completeness report driving the work, and a released
version at the end.

Run:  python examples/alarm_system_spec.py
"""

from repro.spades import (
    SpadesTool,
    parse_spec,
    render_version_history,
    render_workspace_summary,
)

INITIAL_NOTES = """
# First analyst session: rough notes, mostly vague
thing Alarms "Alarms are represented in an alarm display matrix"
thing OperatorConsole
action AlarmHandler "Handles alarms"
action Sensor "Reads hardware sensors"
action OperatorAlert "Alerts the operator"
data ProcessData input
flow AlarmHandler ? Alarms
read Sensor <- ProcessData
contain AlarmHandler (Sensor, OperatorAlert)
trigger AlarmHandler => OperatorAlert
deadline Alarms 1986-06-01
"""


def main() -> None:
    # ------------------------------------------------------------------
    # session 1: capture the notes, however vague
    # ------------------------------------------------------------------
    tool = parse_spec(INITIAL_NOTES, SpadesTool("alarm-system"))
    tool.begin_session()
    print("=== after session 1 (vague capture) ===")
    print(render_workspace_summary(tool))
    tool.end_session()

    # ------------------------------------------------------------------
    # session 2: refinement, driven by the completeness report
    # ------------------------------------------------------------------
    tool.begin_session()
    print("\n=== gaps driving session 2 ===")
    for gap in tool.completeness_report():
        print(" ", gap)

    # the vague dataflow turns out to be a write; Alarms is an output
    tool.refine_to_output("Alarms")
    # OperatorConsole turns out to be data read by OperatorAlert
    tool.note_dataflow("OperatorConsole", "OperatorAlert")
    tool.refine_to_output("OperatorConsole")
    # close the remaining minima
    tool.read_flow("Alarms", "OperatorAlert")
    tool.read_flow("OperatorConsole", "AlarmHandler")
    tool.write_flow("ProcessData", "Sensor", times=1)
    tool.read_flow("ProcessData", "AlarmHandler")
    tool.end_session()

    print("\n=== after session 2 (refined) ===")
    print(render_workspace_summary(tool))

    # ------------------------------------------------------------------
    # release: only possible once complete
    # ------------------------------------------------------------------
    version = tool.release()
    print(f"\nreleased specification as version {version}")
    print("\n=== version history of Alarms ===")
    print(render_version_history(tool.db, "Alarms"))

    # ------------------------------------------------------------------
    # design space exploration: work continues on the main line, then an
    # alternative decomposition is tried from the released version
    # ------------------------------------------------------------------
    tool.annotate("AlarmHandler", "main line: considering priority queues")

    tool.explore_alternative(version)  # snapshots the main line, rebases
    tool.declare_action("AlarmFilter", "suppresses duplicate alarms")
    tool.decompose("AlarmHandler", "AlarmFilter")
    tool.read_flow("Alarms", "AlarmFilter")
    alternative = tool.db.create_version()
    print(f"\nexplored alternative {alternative} branched off {version}:")
    print(render_version_history(tool.db))


if __name__ == "__main__":
    main()
