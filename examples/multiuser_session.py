#!/usr/bin/env python
"""The multi-user service: sessions, wire clients, MVCC snapshot reads.

Since PR 7 the two-level architecture (paper, "Open problems") is a
real concurrent service: ``connect`` mints a session *token* — the
credential every check-out/check-in presents — the lock table is keyed
by token (a stale pre-disconnect handle can never touch its successor's
locks), and retrieval runs against *pinned snapshot views* that stay
consistent while check-ins apply.

This script runs the service in-process on an ephemeral port. The same
service runs standalone against a durable journal with::

    python -m repro serve central.journal --port 7844

and any number of :class:`~repro.multiuser.ServiceClient` processes
connect to it.

Run:  python examples/multiuser_session.py
"""

from repro.core import LockError, SeedError
from repro.multiuser import SeedServer, SeedService, ServiceClient
from repro.spades import SpadesTool, spades_schema
from repro.workloads import SpecShape, generate_spec, load_into_spades


def main() -> None:
    # ------------------------------------------------------------------
    # the central database, seeded with a generated specification
    # ------------------------------------------------------------------
    server = SeedServer(spades_schema())
    spec = generate_spec(
        SpecShape(actions=6, data=6, flows=8, vague_fraction=0.0), seed=7
    )
    load_into_spades(spec, SpadesTool("central", db=server.master))
    server.create_global_version()
    data_names = sorted(
        o.simple_name
        for o in server.master.objects("Data", include_specials=False)
    )
    print("central objects:", ", ".join(data_names))

    # ------------------------------------------------------------------
    # serve it: many concurrent clients over the wire protocol
    # ------------------------------------------------------------------
    with SeedService(server, maintain_every=2) as service:
        host, port = service.address
        print(f"\nserving on {host}:{port} (JSON lines over a socket)")

        alice = ServiceClient.for_service(service, "alice")
        bob = ServiceClient.for_service(service, "bob")
        print(f"alice's session token: {alice.token}")

        # -- disjoint check-outs; conflicts fail fast, naming the user -
        alice_item, bob_item = data_names[0], data_names[1]
        alice_local = alice.check_out(alice_item)
        bob.check_out(bob_item)
        try:
            bob_second = ServiceClient.for_service(service, "carol")
            bob_second.check_out(alice_item)
        except LockError as exc:
            print(f"carol's conflicting check-out failed fast: {exc}")

        # -- an MVCC reader pins a snapshot before alice commits -------
        reader = ServiceClient.for_service(service, "reporter")
        pinned = reader.pin()
        before_objects, __ = reader.counts()

        # -- local work with full SEED semantics, then check-in --------
        alice_obj = alice_local.get_object(alice_item)
        alice_obj.add_sub_object("Note", "alice: retention policy = 30 days")
        alice.check_in()
        print(f"\nalice checked in; locks held centrally: "
              f"{len(server.locks)} (bob still holds his)")

        # the reader's pin predates the commit: its answers are frozen
        after_objects, __ = reader.counts()
        print(f"reporter pinned {pinned}: {before_objects} objects before "
              f"alice's commit, still {after_objects} after (consistent "
              "as of the pin)")
        reader.pin()
        fresh_objects, __ = reader.counts()
        print(f"after re-pinning: {fresh_objects} objects (alice's Note)")

        # -- a zombie: bob's socket drops without a clean disconnect ---
        stale_token = bob.token
        bob.close()  # crash, network cut — no disconnect call
        import time
        time.sleep(0.1)  # the service notices EOF and closes the session
        zombie = ServiceClient.for_service(service)
        zombie.token = stale_token  # resurrect the dead credential
        try:
            zombie.check_out(bob_item)
        except SeedError as exc:
            print(f"\nbob's zombie handle was refused: {exc}")
        print(f"bob's locks after the drop: "
              f"{len(server.locks)} held centrally")

        # -- bulk ingest over the wire ---------------------------------
        loader = ServiceClient.for_service(service, "loader")
        local = loader.check_out()
        for i in range(80):
            local.create_object("Data", f"Imported{i}")
        loader.check_in(bulk=True)  # the deferred-maintenance apply path
        print(f"\nloader bulk-ingested 80 objects; service stats:")
        stats = loader.stats()
        print(f"  check-ins applied: {stats['checkins_applied']}, "
              f"maintenance runs: {stats['maintenance_runs']}, "
              f"snapshot reads served: {stats['reads_served']}")

        for client in (alice, reader, zombie, loader):
            client.close()

    # the server object survives the service: global versions and all
    version = server.create_global_version()
    print(f"\nglobal version {version} saved; history:")
    print(server.master.versions.tree.render())


if __name__ == "__main__":
    main()
