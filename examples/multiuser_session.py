#!/usr/bin/env python
"""The two-level multi-user architecture (paper, "Open problems").

Two engineers work on one central specification: they check out disjoint
parts (taking write locks), update local copies with full SEED semantics
(including private local versions), and check their work back in as
single server-side transactions. A conflicting check-out fails fast with
the holder's name.

Run:  python examples/multiuser_session.py
"""

from repro.core import LockError
from repro.multiuser import SeedServer
from repro.spades import SpadesTool, spades_schema
from repro.workloads import SpecShape, generate_spec, load_into_spades


def main() -> None:
    # ------------------------------------------------------------------
    # the central database, seeded with a generated specification
    # ------------------------------------------------------------------
    server = SeedServer(spades_schema())
    spec = generate_spec(
        SpecShape(actions=6, data=6, flows=8, vague_fraction=0.0), seed=7
    )
    load_into_spades(spec, SpadesTool("central", db=server.master))
    server.create_global_version()
    data_names = [o.simple_name for o in server.master.objects("Data", include_specials=False)]
    print("central objects:", ", ".join(sorted(data_names)))

    # ------------------------------------------------------------------
    # two clients, disjoint check-outs
    # ------------------------------------------------------------------
    alice = server.connect("alice")
    bob = server.connect("bob")

    alice_item, bob_item = data_names[0], data_names[1]
    alice_local = alice.check_out(alice_item)
    bob_local = bob.check_out(bob_item)
    print(f"\nalice checked out {alice_item}, bob checked out {bob_item}")
    print(f"write locks held centrally: {len(server.locks)}")

    # a third client cannot touch alice's item
    carol = server.connect("carol")
    try:
        carol.check_out(alice_item)
    except LockError as exc:
        print(f"carol's conflicting check-out failed fast: {exc}")

    # ------------------------------------------------------------------
    # local work with full SEED semantics, including local versions
    # ------------------------------------------------------------------
    alice_obj = alice_local.get_object(alice_item)
    alice_obj.add_sub_object("Note", "alice: needs retention policy")
    alice.save_local_version()                      # private snapshot
    alice_obj.sub_objects("Note")[0].set_value(
        "alice: retention policy = 30 days"
    )
    print(f"\nalice's local versions: {[str(v) for v in alice.local_versions()]}")

    bob_local.get_object(bob_item).add_sub_object("Note", "bob: rename pending")

    # ------------------------------------------------------------------
    # check-in: one server transaction each; locks released
    # ------------------------------------------------------------------
    alice.check_in()
    bob.check_in()
    print(f"\nafter check-ins, locks held: {len(server.locks)}")
    for name in (alice_item, bob_item):
        notes = [n.value for n in server.master.get_object(name).sub_objects("Note")]
        print(f"central {name}: {notes}")

    # the server records a global version of the merged state
    version = server.create_global_version()
    print(f"\nglobal version {version} saved; history:")
    print(server.master.versions.tree.render())


if __name__ == "__main__":
    main()
