#!/usr/bin/env python
"""Variant management with patterns (paper, figure 5).

"An example of variants is a set of system configurations that share
most of the software modules, but differ in some hardware dependent
modules." This example builds exactly that: three deployment
configurations of a process-control system sharing kernel/protocol/UI
modules through a variants family, each adding its own hardware
drivers — then shows that extending the common part reaches every
variant automatically and provably uniformly.

Run:  python examples/variant_configurations.py
"""

from repro.core import SeedDatabase
from repro.core.variants import VariantFamily
from repro.spades import spades_schema


def module_names(db, variant):
    return sorted(str(m.name) for m in db.navigate(variant, "AllocatedTo", "module"))


def main() -> None:
    db = SeedDatabase(spades_schema(), "configurations")

    # ------------------------------------------------------------------
    # the common part: modules every configuration ships
    # ------------------------------------------------------------------
    kernel = db.create_object("Module", "Kernel")
    protocol = db.create_object("Module", "ProtocolStack")
    ui = db.create_object("Module", "OperatorUI")

    family = VariantFamily(db, "Deployment", variant_class="Action")
    for module in (kernel, protocol, ui):
        family.add_shared_relationship(
            "AllocatedTo", {"module": module}, variant_role="action"
        )
    # a shared deadline for all configurations (the pattern example)
    deadline = family.add_shared_sub_object("Deadline", "1986-09-01")

    # ------------------------------------------------------------------
    # the variants: one configuration per site, plus its own drivers
    # ------------------------------------------------------------------
    for site, driver_name in (
        ("AlpineSite", "AvalancheSensorDriver"),
        ("DesertSite", "SandstormFilterDriver"),
        ("OffshoreSite", "WaveMotionDriver"),
    ):
        config = db.create_object("Action", f"{site}Config")
        config.add_sub_object("Description", f"configuration for {site}")
        family.add_variant(config)
        driver = db.create_object("Module", driver_name)
        db.relate("AllocatedTo", {"action": config, "module": driver})

    print("=== configurations (common + variant parts) ===")
    for variant in family.variants:
        print(f"{variant.simple_name}: {', '.join(module_names(db, variant))}")
    print("uniformity problems:", family.check_uniformity() or "none")

    # ------------------------------------------------------------------
    # evolve the common part: ONE update reaches every configuration
    # ------------------------------------------------------------------
    logging = db.create_object("Module", "LoggingModule")
    family.add_shared_relationship(
        "AllocatedTo", {"module": logging}, variant_role="action"
    )
    deadline.set_value("1986-12-01")  # deadline slips — once, for all

    print("\n=== after extending the common part ===")
    for variant in family.variants:
        deadlines = [
            str(d.value) for d in variant.effective_sub_objects("Deadline")
        ]
        print(
            f"{variant.simple_name}: {', '.join(module_names(db, variant))} "
            f"(deadline {deadlines[0]})"
        )
    print("uniformity problems:", family.check_uniformity() or "none")

    # ------------------------------------------------------------------
    # inherited information is protected: no per-variant override exists
    # ------------------------------------------------------------------
    from repro.core import ConsistencyError

    alpine = db.get_object("AlpineSiteConfig")
    try:
        alpine.add_sub_object("Deadline", "1987-01-01")
    except ConsistencyError:
        print(
            "\nper-variant deadline override rejected: inherited "
            "information can only be updated in the pattern itself"
        )


if __name__ == "__main__":
    main()
